(* Allocation regression tests: GC-delta bytes per simulated packet on
   the two gate scenarios (dumbbell contention and the epsilon-routed
   multipath lattice), on both scheduler substrates.

   These replicate the bench/alloc_suite.ml scenarios at the same scale
   (they run in milliseconds) but live in the test suite so `dune
   runtest` catches an allocation regression without anyone running
   `make bench-gate`: a box back on the heap-sift or RNG path, a
   closure per packet, a [Some] on the receiver path all cost hundreds
   of bytes per packet and blow the budget immediately.

   The budgets are the PR6 acceptance ceilings (PR3 + 10%), not the
   currently-measured values (~230 B/packet) — headroom for compiler
   version drift, none for a real per-packet allocation. *)

let dumbbell_budget = 360.

let lattice_budget = 385.

let bounded_config segments =
  { Tcp.Config.default with
    Tcp.Config.total_segments = Some segments;
    min_rto = 0.2;
    initial_rto = 1.;
    max_rto = 16. }

let count_packets network =
  List.fold_left
    (fun acc link ->
      acc + Net.Link.transmitted_packets link + Net.Link.queue_drops link)
    (Net.Network.total_injected_losses network)
    (Net.Network.links network)

(* [bytes_per_packet network ~measured] warms the minor heap out of the
   way, runs the measured phase, flushes, and returns the GC-delta
   quotient (see bench/alloc_suite.ml for why the flush is needed on
   OCaml 5). *)
let bytes_per_packet network ~measured =
  Gc.full_major ();
  let packets0 = count_packets network in
  let bytes0 = Gc.allocated_bytes () in
  measured ();
  Gc.minor ();
  let allocated = Gc.allocated_bytes () -. bytes0 in
  let packets = count_packets network - packets0 in
  Alcotest.(check bool) "measured phase moved packets" true (packets > 1000);
  allocated /. float_of_int packets

(* Dumbbell: a TCP-PR + TCP-SACK pair through the 1.5 Mb/s bottleneck,
   warmup pair run to completion first (flows 0/1), measured pair
   (flows 2/3) on the already-warm network. *)
let dumbbell_bytes ~use_wheel =
  let engine = Sim.Engine.create ~use_wheel () in
  let topo =
    Topo.Dumbbell.create engine ~bottleneck_bandwidth_bps:1.5e6
      ~queue_capacity:10 ()
  in
  let network = topo.Topo.Dumbbell.network in
  let config = bounded_config 600 in
  let start ~at flow sender =
    let c =
      Tcp.Connection.create network ~flow ~src:topo.Topo.Dumbbell.sources.(0)
        ~dst:topo.Topo.Dumbbell.sinks.(0) ~sender ~config
        ~route_data:(fun () -> Topo.Dumbbell.route_forward topo ~pair:0)
        ~route_ack:(fun () -> Topo.Dumbbell.route_reverse topo ~pair:0)
        ()
    in
    Tcp.Connection.start c ~at
  in
  start ~at:0. 0 (snd Experiments.Variants.tcp_pr);
  start ~at:0.05 1 (snd Experiments.Variants.tcp_sack);
  Sim.Engine.run engine ~until:120.;
  start ~at:120. 2 (snd Experiments.Variants.tcp_pr);
  start ~at:120.05 3 (snd Experiments.Variants.tcp_sack);
  bytes_per_packet network ~measured:(fun () ->
      Sim.Engine.run engine ~until:240.)

(* Lattice: one TCP-PR flow, epsilon = 0 (uniform path choice, maximal
   persistent reordering), warmup flow first. *)
let lattice_bytes ~use_wheel =
  let engine = Sim.Engine.create ~use_wheel () in
  let topo = Topo.Multipath_lattice.create engine ~path_hops:[ 2; 3; 4 ] () in
  let network = topo.Topo.Multipath_lattice.network in
  let rng = Sim.Rng.create 42 in
  let sampler label =
    Multipath.Epsilon_routing.for_lattice (Sim.Rng.split rng label)
      ~epsilon:0. topo
  in
  let start ~at flow =
    let fwd = sampler (Printf.sprintf "fwd-%d" flow)
    and rev = sampler (Printf.sprintf "rev-%d" flow) in
    let connection =
      Tcp.Connection.create network ~flow
        ~src:topo.Topo.Multipath_lattice.source
        ~dst:topo.Topo.Multipath_lattice.destination
        ~sender:(snd Experiments.Variants.tcp_pr)
        ~config:(bounded_config 600)
        ~route_data:(fun () ->
          Multipath.Epsilon_routing.route fwd
            topo.Topo.Multipath_lattice.forward_routes)
        ~route_ack:(fun () ->
          Multipath.Epsilon_routing.route rev
            topo.Topo.Multipath_lattice.reverse_routes)
        ()
    in
    Tcp.Connection.start connection ~at
  in
  start ~at:0. 0;
  Sim.Engine.run engine ~until:120.;
  start ~at:120. 1;
  bytes_per_packet network ~measured:(fun () ->
      Sim.Engine.run engine ~until:240.)

let check_budget name budget bytes =
  if bytes > budget then
    Alcotest.failf "%s: %.1f B/packet exceeds the %.0f B/packet budget" name
      bytes budget

let test_dumbbell_wheel () =
  check_budget "dumbbell (wheel)" dumbbell_budget (dumbbell_bytes ~use_wheel:true)

let test_dumbbell_heap () =
  check_budget "dumbbell (heap)" dumbbell_budget (dumbbell_bytes ~use_wheel:false)

let test_lattice_wheel () =
  check_budget "lattice (wheel)" lattice_budget (lattice_bytes ~use_wheel:true)

let test_lattice_heap () =
  check_budget "lattice (heap)" lattice_budget (lattice_bytes ~use_wheel:false)

let () =
  Alcotest.run "alloc"
    [ ( "bytes-per-packet",
        [ Alcotest.test_case "dumbbell, wheel" `Quick test_dumbbell_wheel;
          Alcotest.test_case "dumbbell, heap" `Quick test_dumbbell_heap;
          Alcotest.test_case "lattice, wheel" `Quick test_lattice_wheel;
          Alcotest.test_case "lattice, heap" `Quick test_lattice_heap ] ) ]
