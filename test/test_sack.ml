(* Tests for the SACK engine: scoreboard loss detection, pipe-governed
   transmission, DSACK spurious-retransmission responses (the
   Blanton-Allman policies), and the TD-FR delayed trigger. *)


(* The handlers now write into an {!Tcp.Action_buffer.t} instead of
   returning a list; shadow them with list-returning adapters so the
   assertions below keep their original shape. *)
module Tcp = struct
  include Tcp

  module Sack_core = struct
    include Sack_core

    let start t ~now = Action_buffer.collect (Sack_core.start t ~now)

    let on_ack t ~now ack = Action_buffer.collect (Sack_core.on_ack t ~now ack)

    let on_timer t ~now ~key =
      Action_buffer.collect (Sack_core.on_timer t ~now ~key)
  end
end

let check_float = Alcotest.(check (float 1e-9))

let sends actions =
  List.filter_map
    (function Tcp.Action.Send { seq; retx } -> Some (seq, retx) | _ -> None)
    actions

let retransmissions actions =
  List.filter_map (fun (seq, retx) -> if retx then Some seq else None)
    (sends actions)

let new_sends actions =
  List.filter_map (fun (seq, retx) -> if retx then None else Some seq)
    (sends actions)

let timer_sets actions =
  List.filter_map
    (function
      | Tcp.Action.Set_timer { key; delay } -> Some (key, delay) | _ -> None)
    actions

let timer_cancels actions =
  List.filter_map
    (function Tcp.Action.Cancel_timer { key } -> Some key | _ -> None)
    actions

let ack ?(sacks = []) ?dsack ~next ~for_seq () =
  let block (first, last) = { Tcp.Types.first; last } in
  { Tcp.Types.next;
    sacks = List.map block sacks;
    dsack = Option.map block dsack;
    for_seq;
    for_retx = false;
    serial = 0;
    rwnd = Tcp.Types.rwnd_unbounded }

let make ?(response = Tcp.Sack_core.plain_sack)
    ?(trigger = Tcp.Sack_core.Immediate) ?(cwnd = 8.) () =
  let config = { Tcp.Config.default with Tcp.Config.initial_cwnd = cwnd } in
  let t = Tcp.Sack_core.create ~response ~trigger config in
  ignore (Tcp.Sack_core.start t ~now:0.);
  t

(* Standard opening: a window is in flight, segment [base] is lost, the
   next three segments arrive and produce SACK-bearing duplicates.
   Returns the actions of the third duplicate. *)
let three_dups ?(base = 0) t =
  let dup i =
    Tcp.Sack_core.on_ack t ~now:(0.1 +. (0.01 *. float_of_int i))
      (ack ~next:base ~for_seq:(base + i) ~sacks:[ (base + 1, base + i) ] ())
  in
  ignore (dup 1);
  ignore (dup 2);
  dup 3

let test_sack_loss_detection_and_retransmit () =
  let t = make () in
  let a3 = three_dups t in
  Alcotest.(check (list int)) "retransmits the hole" [ 0 ] (retransmissions a3);
  Alcotest.(check bool) "in recovery" true (Tcp.Sack_core.in_recovery t);
  check_float "halved" 4. (Tcp.Sack_core.cwnd t)

let test_sack_no_retransmit_before_dupthresh () =
  let t = make () in
  let a =
    Tcp.Sack_core.on_ack t ~now:0.1
      (ack ~next:0 ~for_seq:1 ~sacks:[ (1, 1) ] ())
  in
  Alcotest.(check (list int)) "no retx after one sack" [] (retransmissions a);
  let a =
    Tcp.Sack_core.on_ack t ~now:0.11
      (ack ~next:0 ~for_seq:2 ~sacks:[ (1, 2) ] ())
  in
  Alcotest.(check (list int)) "no retx after two" [] (retransmissions a)

let test_sack_pipe_accounting () =
  let t = make () in
  ignore (three_dups t);
  (* Flight is 10 (0..7 plus two limited-transmit segments), 3 SACKed,
     the lost segment retransmitted and back in flight: pipe = 7. It
     legitimately exceeds the halved window right after the reduction
     and decays as further SACKs arrive. *)
  Alcotest.(check int) "pipe" 7 (Tcp.Sack_core.pipe t)

let test_sack_extended_limited_transmit () =
  (* SACKed arrivals shrink the pipe, releasing new data before any
     loss is declared. *)
  let t = make ~cwnd:4. () in
  let a =
    Tcp.Sack_core.on_ack t ~now:0.1
      (ack ~next:0 ~for_seq:1 ~sacks:[ (1, 1) ] ())
  in
  Alcotest.(check (list int)) "one new segment" [ 4 ] (new_sends a)

let test_sack_recovery_exit_restores_growth () =
  let t = make () in
  ignore (three_dups t);
  (* Cumulative covering everything outstanding exits recovery. *)
  ignore (Tcp.Sack_core.on_ack t ~now:0.2 (ack ~next:20 ~for_seq:0 ()));
  Alcotest.(check bool) "left recovery" false (Tcp.Sack_core.in_recovery t);
  let before = Tcp.Sack_core.cwnd t in
  ignore (Tcp.Sack_core.on_ack t ~now:0.3 (ack ~next:21 ~for_seq:20 ()));
  Alcotest.(check bool) "window grows again" true (Tcp.Sack_core.cwnd t > before)

let test_sack_rto_marks_lost_and_slow_starts () =
  let t = make () in
  let actions = Tcp.Sack_core.on_timer t ~now:3. ~key:0 in
  check_float "cwnd 1" 1. (Tcp.Sack_core.cwnd t);
  Alcotest.(check (list int)) "retransmits first hole" [ 0 ]
    (retransmissions actions);
  Alcotest.(check bool) "timer re-armed" true
    (List.mem_assoc 0 (timer_sets actions))

let test_sack_max_burst_cap () =
  let t = make ~cwnd:64. () in
  (* A cumulative jump opens a huge window at once; at most 4 segments
     may leave per event. *)
  let a = Tcp.Sack_core.on_ack t ~now:0.1 (ack ~next:8 ~for_seq:7 ()) in
  Alcotest.(check bool) "burst capped" true (List.length (new_sends a) <= 4)

let test_sack_dupack_does_not_restart_rto () =
  let t = make () in
  let a =
    Tcp.Sack_core.on_ack t ~now:0.1
      (ack ~next:0 ~for_seq:1 ~sacks:[ (1, 1) ] ())
  in
  Alcotest.(check bool) "no rto restart on dup" false
    (List.mem_assoc 0 (timer_sets a));
  let a = Tcp.Sack_core.on_ack t ~now:0.2 (ack ~next:1 ~for_seq:0 ()) in
  Alcotest.(check bool) "advance restarts rto" true
    (List.mem_assoc 0 (timer_sets a))

(* --- DSACK responses ------------------------------------------------ *)

(* Force a spurious fast retransmission of seq 0 (it was merely
   reordered), then deliver the DSACK that reveals it. *)
let spurious_episode ?(response = Tcp.Sack_core.inc_by_1) () =
  let t = make ~response () in
  ignore (three_dups t);
  (* Late original arrives: cumulative jumps to 4. *)
  ignore (Tcp.Sack_core.on_ack t ~now:0.2 (ack ~next:4 ~for_seq:0 ()));
  (* The retransmission lands as a duplicate: DSACK for 0. *)
  ignore
    (Tcp.Sack_core.on_ack t ~now:0.21 (ack ~next:4 ~for_seq:0 ~dsack:(0, 0) ()));
  t

let test_dsack_detects_spurious () =
  let t = spurious_episode () in
  let metric name = List.assoc name (Tcp.Sack_core.metrics t) in
  check_float "one spurious detected" 1. (metric "spurious_detected")

let test_dsack_restores_window () =
  let t = spurious_episode ~response:Tcp.Sack_core.dsack_nm () in
  (* dupthresh unchanged for DSACK-NM... *)
  Alcotest.(check int) "dupthresh static" 3 (Tcp.Sack_core.dupthresh t);
  (* ...but ssthresh was restored to the pre-retransmit cwnd (8), so
     once recovery ends slow start climbs back: growth is +1 per ack,
     not +1/cwnd. *)
  ignore (Tcp.Sack_core.on_ack t ~now:0.3 (ack ~next:20 ~for_seq:9 ()));
  let before = Tcp.Sack_core.cwnd t in
  ignore (Tcp.Sack_core.on_ack t ~now:0.31 (ack ~next:21 ~for_seq:20 ()));
  Alcotest.(check bool) "slow-start growth (+1)" true
    (Tcp.Sack_core.cwnd t >= before +. 0.99)

let test_dsack_plain_sack_ignores () =
  let t = spurious_episode ~response:Tcp.Sack_core.plain_sack () in
  let metric name = List.assoc name (Tcp.Sack_core.metrics t) in
  check_float "nothing detected" 0. (metric "spurious_detected");
  Alcotest.(check int) "dupthresh untouched" 3 (Tcp.Sack_core.dupthresh t)

let test_dsack_inc_by_1 () =
  let t = spurious_episode ~response:Tcp.Sack_core.inc_by_1 () in
  Alcotest.(check int) "dupthresh incremented" 4 (Tcp.Sack_core.dupthresh t)

let test_dsack_inc_by_n_averages () =
  let t = make ~response:Tcp.Sack_core.inc_by_n ~cwnd:16. () in
  (* Seven duplicate ACKs before the late original arrives. *)
  for i = 1 to 7 do
    ignore
      (Tcp.Sack_core.on_ack t ~now:(0.1 +. (0.01 *. float_of_int i))
         (ack ~next:0 ~for_seq:i ~sacks:[ (1, i) ] ()))
  done;
  ignore (Tcp.Sack_core.on_ack t ~now:0.2 (ack ~next:8 ~for_seq:0 ()));
  ignore
    (Tcp.Sack_core.on_ack t ~now:0.21 (ack ~next:8 ~for_seq:0 ~dsack:(0, 0) ()));
  (* avg(3, 7) = 5. *)
  Alcotest.(check int) "averaged" 5 (Tcp.Sack_core.dupthresh t)

let test_dsack_ewma_stays_at_stable_observation () =
  let t = spurious_episode ~response:Tcp.Sack_core.ewma () in
  (* EWMA starts at 3 and the observation is 3: stays 3. *)
  Alcotest.(check int) "stable at observation" 3 (Tcp.Sack_core.dupthresh t)

let test_higher_dupthresh_tolerates_reordering () =
  let t = make ~response:Tcp.Sack_core.inc_by_1 ~cwnd:16. () in
  (* First spurious event raises dupthresh to 4... *)
  ignore (three_dups t);
  ignore (Tcp.Sack_core.on_ack t ~now:0.2 (ack ~next:4 ~for_seq:0 ()));
  ignore
    (Tcp.Sack_core.on_ack t ~now:0.21 (ack ~next:4 ~for_seq:0 ~dsack:(0, 0) ()));
  Alcotest.(check int) "dupthresh 4" 4 (Tcp.Sack_core.dupthresh t);
  (* ...so the same 3-duplicate reordering pattern no longer triggers a
     retransmission. *)
  let a3 = three_dups ~base:4 t in
  Alcotest.(check (list int)) "tolerated" [] (retransmissions a3)

(* --- TD-FR ----------------------------------------------------------- *)

let test_td_fr_delays_retransmission () =
  let t = make ~trigger:Tcp.Sack_core.Time_delayed () in
  let a3 = three_dups t in
  Alcotest.(check (list int)) "no immediate retx" [] (retransmissions a3);
  Alcotest.(check bool) "not yet in recovery" false
    (Tcp.Sack_core.in_recovery t)

let test_td_fr_fires_and_retransmits () =
  let t = make ~trigger:Tcp.Sack_core.Time_delayed () in
  ignore (three_dups t);
  let a = Tcp.Sack_core.on_timer t ~now:2. ~key:1 in
  Alcotest.(check (list int)) "retransmits after delay" [ 0 ]
    (retransmissions a);
  Alcotest.(check bool) "entered recovery" true (Tcp.Sack_core.in_recovery t)

let test_td_fr_cancelled_by_reordering () =
  let t = make ~trigger:Tcp.Sack_core.Time_delayed () in
  ignore (three_dups t);
  (* The "lost" packet arrives before the delay expires: cumulative
     covers it and the wait is cancelled. *)
  let a = Tcp.Sack_core.on_ack t ~now:0.15 (ack ~next:4 ~for_seq:0 ()) in
  Alcotest.(check (list int)) "delay cancelled" [ 1 ] (timer_cancels a);
  let late = Tcp.Sack_core.on_timer t ~now:2. ~key:1 in
  Alcotest.(check (list int)) "a stale firing does nothing" []
    (retransmissions late);
  Alcotest.(check bool) "never entered recovery" false
    (Tcp.Sack_core.in_recovery t)

let test_td_fr_window_survives_reordering () =
  let t = make ~trigger:Tcp.Sack_core.Time_delayed () in
  ignore (three_dups t);
  ignore (Tcp.Sack_core.on_ack t ~now:0.15 (ack ~next:4 ~for_seq:0 ()));
  (* Reordering resolved without recovery: the window was never
     halved. *)
  Alcotest.(check bool) "window not reduced" true (Tcp.Sack_core.cwnd t >= 8.)

let () =
  Alcotest.run "sack"
    [ ( "scoreboard",
        [ Alcotest.test_case "loss detection" `Quick
            test_sack_loss_detection_and_retransmit;
          Alcotest.test_case "below dupthresh" `Quick
            test_sack_no_retransmit_before_dupthresh;
          Alcotest.test_case "pipe accounting" `Quick test_sack_pipe_accounting;
          Alcotest.test_case "extended limited transmit" `Quick
            test_sack_extended_limited_transmit;
          Alcotest.test_case "recovery exit" `Quick
            test_sack_recovery_exit_restores_growth;
          Alcotest.test_case "rto" `Quick
            test_sack_rto_marks_lost_and_slow_starts;
          Alcotest.test_case "max burst" `Quick test_sack_max_burst_cap;
          Alcotest.test_case "dupack keeps rto" `Quick
            test_sack_dupack_does_not_restart_rto ] );
      ( "dsack-responses",
        [ Alcotest.test_case "detects spurious" `Quick
            test_dsack_detects_spurious;
          Alcotest.test_case "restores window" `Quick test_dsack_restores_window;
          Alcotest.test_case "plain sack ignores" `Quick
            test_dsack_plain_sack_ignores;
          Alcotest.test_case "inc by 1" `Quick test_dsack_inc_by_1;
          Alcotest.test_case "inc by n averages" `Quick
            test_dsack_inc_by_n_averages;
          Alcotest.test_case "ewma" `Quick
            test_dsack_ewma_stays_at_stable_observation;
          Alcotest.test_case "tolerates reordering after adapt" `Quick
            test_higher_dupthresh_tolerates_reordering ] );
      ( "td-fr",
        [ Alcotest.test_case "delays retransmission" `Quick
            test_td_fr_delays_retransmission;
          Alcotest.test_case "fires and retransmits" `Quick
            test_td_fr_fires_and_retransmits;
          Alcotest.test_case "cancelled by reordering" `Quick
            test_td_fr_cancelled_by_reordering;
          Alcotest.test_case "window survives reordering" `Quick
            test_td_fr_window_survives_reordering ] ) ]
