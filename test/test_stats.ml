(* Tests for the statistics library: summaries, the paper's fairness
   metrics (Section 4), throughput conversion and table rendering. *)

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Summary                                                             *)
(* ------------------------------------------------------------------ *)

let test_summary_basic () =
  let s = Stats.Summary.of_list [ 1.; 2.; 3.; 4. ] in
  Alcotest.(check int) "count" 4 s.Stats.Summary.count;
  check_float "mean" 2.5 s.Stats.Summary.mean;
  check_float "variance" 1.25 s.Stats.Summary.variance;
  check_float "min" 1. s.Stats.Summary.min;
  check_float "max" 4. s.Stats.Summary.max

let test_summary_singleton () =
  let s = Stats.Summary.of_list [ 7. ] in
  check_float "mean" 7. s.Stats.Summary.mean;
  check_float "variance" 0. s.Stats.Summary.variance

let test_summary_empty_rejected () =
  Alcotest.check_raises "empty" (Invalid_argument "Summary.of_list: empty")
    (fun () -> ignore (Stats.Summary.of_list []))

let test_percentile () =
  let samples = [ 1.; 2.; 3.; 4.; 5. ] in
  check_float "median" 3. (Stats.Summary.percentile samples 50.);
  check_float "min" 1. (Stats.Summary.percentile samples 0.);
  check_float "max" 5. (Stats.Summary.percentile samples 100.);
  check_float "interpolated" 1.4 (Stats.Summary.percentile samples 10.)

let test_percentile_endpoints () =
  (* n = 2: p = 0 and p = 100 are exactly the extremes, the midpoint
     interpolates halfway. *)
  let samples = [ 20.; 10. ] in
  check_float "p0" 10. (Stats.Summary.percentile samples 0.);
  check_float "p100" 20. (Stats.Summary.percentile samples 100.);
  check_float "p50" 15. (Stats.Summary.percentile samples 50.);
  (* Negative values must sort below positive ones (Float.compare, not
     the polymorphic compare that once scrambled NaN-adjacent sorts). *)
  check_float "negative p0" (-5.) (Stats.Summary.percentile [ 3.; -5. ] 0.)

let test_summary_nan_rejected () =
  Alcotest.check_raises "of_list"
    (Invalid_argument "Summary.of_list: NaN sample") (fun () ->
      ignore (Stats.Summary.of_list [ 1.; Float.nan ]));
  Alcotest.check_raises "percentile samples"
    (Invalid_argument "Summary.percentile: NaN sample") (fun () ->
      ignore (Stats.Summary.percentile [ 1.; Float.nan ] 50.));
  Alcotest.check_raises "percentile NaN p"
    (Invalid_argument "Summary.percentile: out of range") (fun () ->
      ignore (Stats.Summary.percentile [ 1. ] Float.nan));
  Alcotest.check_raises "percentile p > 100"
    (Invalid_argument "Summary.percentile: out of range") (fun () ->
      ignore (Stats.Summary.percentile [ 1. ] 100.5))

let test_summary_variance_two_points () =
  (* {-1, 1}: mean 0, population variance 1 — the d*d accumulation
     must not lose the sign symmetry the old ( ** 2.) path could. *)
  let s = Stats.Summary.of_list [ -1.; 1. ] in
  check_float "mean" 0. s.Stats.Summary.mean;
  check_float "variance" 1. s.Stats.Summary.variance;
  check_float "stddev" 1. s.Stats.Summary.stddev;
  check_float "min" (-1.) s.Stats.Summary.min

let test_cov () =
  (* Identical samples: no variation. *)
  check_float "zero variation" 0.
    (Stats.Summary.coefficient_of_variation [ 2.; 2.; 2. ]);
  (* mean 2, sd 1 -> CoV 0.5 for {1,3} (population sd). *)
  check_float "cov" 0.5 (Stats.Summary.coefficient_of_variation [ 1.; 3. ])

let summary_props =
  [ QCheck.Test.make ~name:"mean within [min, max]" ~count:300
      QCheck.(list_of_size (Gen.int_range 1 30) (float_range (-100.) 100.))
      (fun samples ->
        let s = Stats.Summary.of_list samples in
        s.Stats.Summary.min <= s.Stats.Summary.mean +. 1e-9
        && s.Stats.Summary.mean <= s.Stats.Summary.max +. 1e-9);
    QCheck.Test.make ~name:"percentile monotone" ~count:300
      QCheck.(
        triple
          (list_of_size (Gen.int_range 1 30) (float_range 0. 100.))
          (float_range 0. 100.) (float_range 0. 100.))
      (fun (samples, p1, p2) ->
        let lo = min p1 p2 and hi = max p1 p2 in
        Stats.Summary.percentile samples lo
        <= Stats.Summary.percentile samples hi +. 1e-9) ]

(* ------------------------------------------------------------------ *)
(* Fairness                                                            *)
(* ------------------------------------------------------------------ *)

let test_normalized () =
  Alcotest.(check (list (float 1e-9)))
    "equal flows normalise to 1" [ 1.; 1.; 1. ]
    (Stats.Fairness.normalized [ 5.; 5.; 5. ]);
  Alcotest.(check (list (float 1e-9)))
    "proportional" [ 0.5; 1.5 ]
    (Stats.Fairness.normalized [ 1.; 3. ])

let test_mean_normalized_groups () =
  (* Two protocols, one starving the other. *)
  let pr = [ 3.; 3. ] and sack = [ 1.; 1. ] in
  let all = pr @ sack in
  check_float "strong group" 1.5 (Stats.Fairness.mean_normalized ~group:pr ~all);
  check_float "weak group" 0.5
    (Stats.Fairness.mean_normalized ~group:sack ~all);
  (* Perfect fairness: both means are 1. *)
  let even = [ 2.; 2. ] in
  check_float "fair" 1.
    (Stats.Fairness.mean_normalized ~group:even ~all:(even @ even))

let test_fairness_cov () =
  let all = [ 1.; 1.; 3.; 3. ] in
  check_float "uniform group has zero CoV" 0.
    (Stats.Fairness.coefficient_of_variation ~group:[ 3.; 3. ] ~all)

let test_jain () =
  check_float "perfect" 1. (Stats.Fairness.jain [ 4.; 4.; 4. ]);
  (* One flow hogging everything among n: index = 1/n. *)
  check_float "worst case" 0.25 (Stats.Fairness.jain [ 8.; 0.; 0.; 0. ])

let fairness_props =
  [ QCheck.Test.make ~name:"normalized mean is 1" ~count:300
      QCheck.(list_of_size (Gen.int_range 1 20) (float_range 0.1 100.))
      (fun xs ->
        let tis = Stats.Fairness.normalized xs in
        let mean = List.fold_left ( +. ) 0. tis /. float_of_int (List.length tis) in
        abs_float (mean -. 1.) < 1e-9);
    QCheck.Test.make ~name:"jain in (0, 1]" ~count:300
      QCheck.(list_of_size (Gen.int_range 1 20) (float_range 0. 100.))
      (fun xs ->
        let j = Stats.Fairness.jain xs in
        j > 0. && j <= 1. +. 1e-9) ]

(* ------------------------------------------------------------------ *)
(* Throughput                                                          *)
(* ------------------------------------------------------------------ *)

let test_throughput_mbps () =
  (* 1 MB in 8 seconds = 1 Mb/s. *)
  check_float "conversion" 1. (Stats.Throughput.mbps ~bytes:1_000_000 ~seconds:8.)

let test_throughput_window () =
  check_float "windowed" 2.
    (Stats.Throughput.of_window ~bytes_at_start:500_000 ~bytes_at_end:2_500_000
       ~seconds:8.)

let test_throughput_rejects_backwards () =
  Alcotest.check_raises "backwards counter"
    (Invalid_argument "Throughput.of_window: counter went backwards") (fun () ->
      ignore
        (Stats.Throughput.of_window ~bytes_at_start:10 ~bytes_at_end:5
           ~seconds:1.))

(* ------------------------------------------------------------------ *)
(* Table                                                               *)
(* ------------------------------------------------------------------ *)

let test_table_renders () =
  let table = Stats.Table.create ~columns:[ "name"; "value" ] in
  Stats.Table.add_row table [ "alpha"; "0.995" ];
  Stats.Table.add_float_row table ~decimals:1 "beta" [ 3. ];
  let rendered = Stats.Table.to_string table in
  let has s =
    let n = String.length rendered and m = String.length s in
    let rec scan i = i + m <= n && (String.sub rendered i m = s || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "header present" true (has "name");
  Alcotest.(check bool) "row present" true (has "alpha");
  Alcotest.(check bool) "float formatted" true (has "3.0")

let test_table_csv () =
  let table = Stats.Table.create ~columns:[ "a"; "b" ] in
  Stats.Table.add_row table [ "plain"; "with,comma" ];
  Stats.Table.add_row table [ "quo\"te"; "x" ];
  Alcotest.(check string) "csv escaping"
    "a,b\nplain,\"with,comma\"\n\"quo\"\"te\",x\n"
    (Stats.Table.to_csv table)

let test_table_rejects_ragged_rows () =
  let table = Stats.Table.create ~columns:[ "a"; "b" ] in
  Alcotest.check_raises "ragged" (Invalid_argument "Table.add_row: wrong cell count")
    (fun () -> Stats.Table.add_row table [ "only one" ])

(* ------------------------------------------------------------------ *)
(* Timeseries                                                          *)
(* ------------------------------------------------------------------ *)

let ts_of samples =
  let t = Stats.Timeseries.create () in
  List.iter (fun (time, value) -> Stats.Timeseries.record t ~time value) samples;
  t

let test_timeseries_csv_round_trip () =
  let t = ts_of [ (0., 1.5); (0.25, 2.); (1., -3.125) ] in
  let csv = Stats.Timeseries.to_csv t in
  let back = Stats.Timeseries.of_csv csv in
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
    "samples survive" (Stats.Timeseries.to_list t)
    (Stats.Timeseries.to_list back);
  Alcotest.(check string) "round trip is idempotent" csv
    (Stats.Timeseries.to_csv back)

let test_timeseries_of_csv_headerless () =
  let t = Stats.Timeseries.of_csv "0,1\n2,3\n" in
  Alcotest.(check (list (pair (float 0.) (float 0.))))
    "data-bearing first line kept"
    [ (0., 1.); (2., 3.) ]
    (Stats.Timeseries.to_list t)

let test_timeseries_of_csv_rejects_malformed () =
  Alcotest.check_raises "bad number"
    (Invalid_argument "Timeseries.of_csv: bad sample on line 2: \"1,oops\"")
    (fun () -> ignore (Stats.Timeseries.of_csv "time,value\n1,oops\n"));
  Alcotest.check_raises "wrong arity"
    (Invalid_argument "Timeseries.of_csv: expected 2 fields on line 2: \"1,2,3\"")
    (fun () -> ignore (Stats.Timeseries.of_csv "time,value\n1,2,3\n"))

let test_timeseries_json () =
  Alcotest.(check string) "shape"
    "{ \"samples\": [[0, 1.5], [2, 3]] }"
    (Stats.Timeseries.to_json (ts_of [ (0., 1.5); (2., 3.) ]));
  Alcotest.(check string) "empty" "{ \"samples\": [] }"
    (Stats.Timeseries.to_json (Stats.Timeseries.create ()))

let timeseries_round_trip_prop =
  (* %g parsing is exact for round small floats; use dyadic fractions so
     equality is exact and times stay non-decreasing. *)
  QCheck.Test.make ~name:"of_csv inverts to_csv" ~count:300
    QCheck.(list_of_size (Gen.int_range 0 40) (pair (int_range 0 1000) (int_range (-1000) 1000)))
    (fun raw ->
      let samples =
        List.sort compare
          (List.map
             (fun (t, v) -> (float_of_int t /. 8., float_of_int v /. 4.))
             raw)
      in
      let t = ts_of samples in
      let csv = Stats.Timeseries.to_csv t in
      Stats.Timeseries.to_csv (Stats.Timeseries.of_csv csv) = csv)

let () =
  Alcotest.run "stats"
    [ ( "summary",
        [ Alcotest.test_case "basic" `Quick test_summary_basic;
          Alcotest.test_case "singleton" `Quick test_summary_singleton;
          Alcotest.test_case "empty rejected" `Quick test_summary_empty_rejected;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "percentile endpoints" `Quick
            test_percentile_endpoints;
          Alcotest.test_case "NaN rejected" `Quick test_summary_nan_rejected;
          Alcotest.test_case "variance sign symmetry" `Quick
            test_summary_variance_two_points;
          Alcotest.test_case "cov" `Quick test_cov ]
        @ List.map (QCheck_alcotest.to_alcotest ~long:false) summary_props );
      ( "fairness",
        [ Alcotest.test_case "normalized" `Quick test_normalized;
          Alcotest.test_case "mean normalized groups" `Quick
            test_mean_normalized_groups;
          Alcotest.test_case "group cov" `Quick test_fairness_cov;
          Alcotest.test_case "jain" `Quick test_jain ]
        @ List.map (QCheck_alcotest.to_alcotest ~long:false) fairness_props );
      ( "throughput",
        [ Alcotest.test_case "mbps" `Quick test_throughput_mbps;
          Alcotest.test_case "window" `Quick test_throughput_window;
          Alcotest.test_case "rejects backwards" `Quick
            test_throughput_rejects_backwards ] );
      ( "table",
        [ Alcotest.test_case "renders" `Quick test_table_renders;
          Alcotest.test_case "csv" `Quick test_table_csv;
          Alcotest.test_case "ragged rejected" `Quick
            test_table_rejects_ragged_rows ] );
      ( "timeseries",
        [ Alcotest.test_case "csv round trip" `Quick
            test_timeseries_csv_round_trip;
          Alcotest.test_case "headerless csv" `Quick
            test_timeseries_of_csv_headerless;
          Alcotest.test_case "malformed rejected" `Quick
            test_timeseries_of_csv_rejects_malformed;
          Alcotest.test_case "json" `Quick test_timeseries_json;
          QCheck_alcotest.to_alcotest ~long:false timeseries_round_trip_prop ]
      ) ]
