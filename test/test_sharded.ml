(* Sharded engine substrate: the SPSC ring, the conservative-lookahead
   conductor, and the headline claim of the sharded scale scenario —
   the merged probe trace is byte-identical at any domain count, and
   the per-flow invariant monitors hold on every cell. *)

(* ------------------------------------------------------------------ *)
(* SPSC ring                                                           *)
(* ------------------------------------------------------------------ *)

(* FIFO against a Queue model: an arbitrary push/pop interleaving on
   one domain must behave exactly like an unbounded queue truncated by
   the ring's (rounded-up) capacity. *)
let ring_model_prop =
  QCheck.Test.make ~name:"ring matches queue model" ~count:300
    QCheck.(pair (int_range 1 12) (small_list bool))
    (fun (capacity, ops) ->
      let ring = Sim.Spsc_ring.create ~capacity in
      let model = Queue.create () in
      let next = ref 0 in
      List.for_all
        (fun push ->
          if push then begin
            let v = !next in
            incr next;
            let accepted = Sim.Spsc_ring.try_push ring v in
            let fits = Queue.length model < Sim.Spsc_ring.capacity ring in
            if fits then Queue.add v model;
            accepted = fits
          end
          else
            match (Sim.Spsc_ring.try_pop ring, Queue.take_opt model) with
            | Some a, Some b -> a = b
            | None, None -> true
            | _ -> false)
        ops
      && Sim.Spsc_ring.length ring = Queue.length model
      && Sim.Spsc_ring.pushed ring - Sim.Spsc_ring.popped ring
         = Queue.length model)

let test_ring_capacity_rounds_up () =
  let ring = Sim.Spsc_ring.create ~capacity:5 in
  Alcotest.(check int) "rounded to power of two" 8
    (Sim.Spsc_ring.capacity ring);
  Alcotest.check_raises "zero capacity rejected"
    (Invalid_argument "Spsc_ring.create: capacity must be >= 1") (fun () ->
      ignore (Sim.Spsc_ring.create ~capacity:0))

let test_ring_full_and_empty () =
  let ring = Sim.Spsc_ring.create ~capacity:2 in
  Alcotest.(check bool) "empty pop" true (Sim.Spsc_ring.try_pop ring = None);
  Alcotest.(check bool) "push 1" true (Sim.Spsc_ring.try_push ring 1);
  Alcotest.(check bool) "push 2" true (Sim.Spsc_ring.try_push ring 2);
  Alcotest.(check bool) "full push refused" false
    (Sim.Spsc_ring.try_push ring 3);
  Alcotest.(check bool) "pop 1" true (Sim.Spsc_ring.try_pop ring = Some 1);
  Alcotest.(check bool) "push after pop" true (Sim.Spsc_ring.try_push ring 4);
  Alcotest.(check bool) "pop 2" true (Sim.Spsc_ring.try_pop ring = Some 2);
  Alcotest.(check bool) "pop 4" true (Sim.Spsc_ring.try_pop ring = Some 4);
  Alcotest.(check bool) "empty again" true (Sim.Spsc_ring.is_empty ring)

(* One producer domain, consumer on the main domain: every element
   arrives exactly once, in push order, across a real domain
   boundary. *)
let test_ring_cross_domain () =
  let total = 20_000 in
  let ring = Sim.Spsc_ring.create ~capacity:64 in
  let producer =
    Domain.spawn (fun () ->
        for v = 0 to total - 1 do
          while not (Sim.Spsc_ring.try_push ring v) do
            Domain.cpu_relax ()
          done
        done)
  in
  let seen = ref 0 in
  let in_order = ref true in
  while !seen < total do
    match Sim.Spsc_ring.try_pop ring with
    | Some v ->
      if v <> !seen then in_order := false;
      incr seen
    | None -> Domain.cpu_relax ()
  done;
  Domain.join producer;
  Alcotest.(check bool) "all elements in push order" true !in_order;
  Alcotest.(check int) "pushed" total (Sim.Spsc_ring.pushed ring);
  Alcotest.(check int) "popped" total (Sim.Spsc_ring.popped ring)

(* ------------------------------------------------------------------ *)
(* Sharded engine                                                      *)
(* ------------------------------------------------------------------ *)

let test_single_domain_passthrough () =
  let sh = Sim.Sharded_engine.create ~domains:1 () in
  let engine = Sim.Sharded_engine.engine sh 0 in
  let fired = ref [] in
  List.iter
    (fun t ->
      ignore
        (Sim.Engine.schedule_at engine ~time:t (fun () -> fired := t :: !fired)))
    [ 0.5; 0.1; 0.9 ];
  Sim.Sharded_engine.run sh ~until:1.0;
  Alcotest.(check (list (float 0.))) "events in time order" [ 0.1; 0.5; 0.9 ]
    (List.rev !fired);
  Alcotest.(check int) "no conductor windows" 0 (Sim.Sharded_engine.windows sh);
  Alcotest.(check int) "no messages" 0 (Sim.Sharded_engine.messages_sent sh);
  Alcotest.(check int) "events counted" 3
    (Sim.Sharded_engine.events_executed sh)

(* A message from shard 0 arrives on shard 1 at exactly
   [send time +. latency] — the same float a local
   [schedule_after ~delay:latency] would compute. *)
let test_cross_shard_arrival_exact () =
  let sh = Sim.Sharded_engine.create ~domains:2 () in
  let ch = Sim.Sharded_engine.channel sh ~src:0 ~dst:1 ~latency:0.01 () in
  let e0 = Sim.Sharded_engine.engine sh 0 in
  let e1 = Sim.Sharded_engine.engine sh 1 in
  let arrival = ref nan in
  ignore
    (Sim.Engine.schedule_at e0 ~time:0.123 (fun () ->
         Sim.Sharded_engine.send sh ch (fun () ->
             arrival := Sim.Engine.now e1)));
  Sim.Sharded_engine.run sh ~until:1.0;
  Alcotest.(check bool) "arrival is exactly send +. latency" true
    (!arrival = 0.123 +. 0.01);
  Alcotest.(check int) "delivered" 1 (Sim.Sharded_engine.messages_delivered sh)

(* Ping-pong across two shards produces exactly the timestamp sequence
   of the equivalent single-engine schedule_after chain — float for
   float, since both compute now +. latency. *)
let test_ping_pong_matches_single_engine () =
  let rounds = 200 in
  let latency = 0.0125 in
  let single =
    let engine = Sim.Engine.create () in
    let times = ref [] in
    let rec bounce remaining () =
      times := Sim.Engine.now engine :: !times;
      if remaining > 1 then
        ignore
          (Sim.Engine.schedule_after engine ~delay:latency
             (bounce (remaining - 1)))
    in
    ignore (Sim.Engine.schedule_at engine ~time:0. (bounce rounds));
    Sim.Engine.run engine ~until:10.;
    List.rev !times
  in
  let sharded =
    let sh = Sim.Sharded_engine.create ~domains:2 () in
    let fwd = Sim.Sharded_engine.channel sh ~src:0 ~dst:1 ~latency () in
    let rev = Sim.Sharded_engine.channel sh ~src:1 ~dst:0 ~latency () in
    let e0 = Sim.Sharded_engine.engine sh 0 in
    let e1 = Sim.Sharded_engine.engine sh 1 in
    (* Alternate shards: each side records its own hits; the two logs
       interleave strictly by construction. *)
    let t0 = ref [] and t1 = ref [] in
    let rec on0 remaining () =
      t0 := Sim.Engine.now e0 :: !t0;
      if remaining > 1 then
        Sim.Sharded_engine.send sh fwd (on1 (remaining - 1))
    and on1 remaining () =
      t1 := Sim.Engine.now e1 :: !t1;
      if remaining > 1 then
        Sim.Sharded_engine.send sh rev (on0 (remaining - 1))
    in
    ignore (Sim.Engine.schedule_at e0 ~time:0. (on0 rounds));
    Sim.Sharded_engine.run sh ~until:10.;
    (* Merge the two alternating logs back into hit order. *)
    let rec interleave a b =
      match (a, b) with
      | [], rest | rest, [] -> rest
      | x :: a, b -> x :: interleave b a
    in
    interleave (List.rev !t0) (List.rev !t1)
  in
  Alcotest.(check int) "same hit count" (List.length single)
    (List.length sharded);
  Alcotest.(check bool) "bit-identical timestamps" true (single = sharded)

(* Wall-clock interleaving must not leak into results: the same
   scenario run twice delivers the same messages at the same times. *)
let test_repeated_run_deterministic () =
  let run () =
    let sh = Sim.Sharded_engine.create ~domains:3 () in
    let chans =
      List.concat_map
        (fun src ->
          List.filter_map
            (fun dst ->
              if src = dst then None
              else
                Some
                  (Sim.Sharded_engine.channel sh ~src ~dst ~latency:0.004 ()))
            [ 0; 1; 2 ])
        [ 0; 1; 2 ]
    in
    let log = Array.make 3 [] in
    let rec hop shard remaining () =
      log.(shard) <- Sim.Engine.now (Sim.Sharded_engine.engine sh shard)
                     :: log.(shard);
      if remaining > 0 then begin
        let next = (shard + 1) mod 3 in
        let ch = List.nth chans ((shard * 2) + if next > shard then next - 1 else next) in
        Sim.Sharded_engine.send sh ch (hop next (remaining - 1))
      end
    in
    ignore
      (Sim.Engine.schedule_at (Sim.Sharded_engine.engine sh 0) ~time:0.
         (hop 0 500));
    Sim.Sharded_engine.run sh ~until:5.;
    (Array.map List.rev log, Sim.Sharded_engine.messages_delivered sh)
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "identical logs and counts" true (a = b)

(* A far-future event must not cost one window per lookahead quantum:
   the conductor skips idle gaps to the next scheduled event. *)
let test_idle_skip () =
  let sh = Sim.Sharded_engine.create ~domains:2 () in
  ignore (Sim.Sharded_engine.channel sh ~src:0 ~dst:1 ~latency:0.001 ());
  let fired = ref false in
  ignore
    (Sim.Engine.schedule_at (Sim.Sharded_engine.engine sh 1) ~time:999.
       (fun () -> fired := true));
  Sim.Sharded_engine.run sh ~until:1000.;
  Alcotest.(check bool) "fired" true !fired;
  Alcotest.(check bool) "windows stay near-constant"
    true
    (Sim.Sharded_engine.windows sh < 10)

let test_channel_validation () =
  let sh = Sim.Sharded_engine.create ~domains:2 () in
  let expect_invalid name f =
    let raised =
      try
        f ();
        false
      with Invalid_argument _ -> true
    in
    Alcotest.(check bool) name true raised
  in
  expect_invalid "src = dst rejected" (fun () ->
      ignore (Sim.Sharded_engine.channel sh ~src:1 ~dst:1 ~latency:0.01 ()));
  expect_invalid "non-positive latency rejected" (fun () ->
      ignore (Sim.Sharded_engine.channel sh ~src:0 ~dst:1 ~latency:0. ()));
  expect_invalid "shard out of range rejected" (fun () ->
      ignore (Sim.Sharded_engine.channel sh ~src:0 ~dst:5 ~latency:0.01 ()))

let test_send_at_below_lookahead_rejected () =
  let sh = Sim.Sharded_engine.create ~domains:2 () in
  let ch = Sim.Sharded_engine.channel sh ~src:0 ~dst:1 ~latency:0.01 () in
  let raised = ref false in
  (try Sim.Sharded_engine.send_at sh ch ~time:0.005 (fun () -> ())
   with Invalid_argument _ -> raised := true);
  Alcotest.(check bool) "arrival inside the lookahead horizon rejected" true
    !raised

(* ------------------------------------------------------------------ *)
(* Sharded scale scenario: the headline determinism claim              *)
(* ------------------------------------------------------------------ *)

let small_run ?probe_hook ~domains ~seed () =
  Experiments.Scale_sharded.run ~seed ~domains ~flows:48 ~cells:4
    ~duration:0.6 ~record:true ?probe_hook ()

(* Byte-identical merged traces at domains 1/2/4, plus identical
   simulated counts — the oracle sweep of the issue's headline
   claim. *)
let test_merge_identical_across_domains () =
  List.iter
    (fun seed ->
      let fingerprint (r : Experiments.Scale_sharded.result) =
        ( r.Experiments.Scale_sharded.merged_digest,
          Array.to_list r.Experiments.Scale_sharded.cell_digests,
          r.Experiments.Scale_sharded.transfers_completed,
          r.Experiments.Scale_sharded.segments_completed,
          r.Experiments.Scale_sharded.events_executed )
      in
      let base = fingerprint (small_run ~domains:1 ~seed ()) in
      List.iter
        (fun domains ->
          Alcotest.(check bool)
            (Printf.sprintf "seed %d: domains %d equals domains 1" seed
               domains)
            true
            (fingerprint (small_run ~domains ~seed ()) = base))
        [ 2; 4 ])
    [ 0; 1 ]

(* Same scenario, same domain count, run twice: wall-clock scheduling
   of the worker domains must not perturb anything. *)
let test_scale_sharded_repeatable () =
  let digest () =
    (small_run ~domains:2 ~seed:3 ()).Experiments.Scale_sharded.merged_digest
  in
  Alcotest.(check bool) "repeat run identical" true (digest () = digest ())

(* PR2's per-flow invariant monitors hold on every cell at any domain
   count: ordered delivery, conservation, cwnd/rto sanity, TCP-PR
   spurious-retransmission discipline. *)
let test_monitors_hold_per_cell () =
  List.iter
    (fun domains ->
      let monitors = ref [] in
      let hook ~cell:_ probe =
        let ms =
          Check.Monitor.for_variant ~variant:"TCP-PR"
            ~config:Experiments.Scale.default_config
        in
        Check.Monitor.arm probe ms;
        monitors := ms @ !monitors
      in
      ignore (small_run ~probe_hook:hook ~domains ~seed:0 ());
      Alcotest.(check int)
        (Printf.sprintf "no violations at %d domains" domains)
        0
        (List.length (Check.Monitor.all_violations !monitors)))
    [ 1; 2 ]

(* The scenario couples cells only through the shared bottleneck; its
   crossing counters must agree with the per-boundary sum. *)
let test_scale_sharded_counters_consistent () =
  let r = small_run ~domains:2 ~seed:0 () in
  Alcotest.(check bool) "crossings happened" true
    (r.Experiments.Scale_sharded.crossings > 0);
  Alcotest.(check bool) "messages delivered" true
    (r.Experiments.Scale_sharded.messages > 0);
  Alcotest.(check int) "no events left inside the horizon" 0
    (let pending_before =
       (small_run ~domains:1 ~seed:0 ()).Experiments.Scale_sharded
         .pending_at_end
     in
     r.Experiments.Scale_sharded.pending_at_end - pending_before)

(* ------------------------------------------------------------------ *)
(* Oracle scenarios are shard-count independent                        *)
(* ------------------------------------------------------------------ *)

let test_oracle_generate_domain_independent () =
  for seed = 0 to 20 do
    let base = Check.Oracle.generate ~seed () in
    let wide = Check.Oracle.generate ~domains:4 ~seed () in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: realisation identical at any domain count"
         seed)
      true
      (wide = { base with Check.Oracle.domains = 4 })
  done;
  Alcotest.(check int) "default is one domain" 1
    (Check.Oracle.generate ~seed:0 ()).Check.Oracle.domains

let () =
  Alcotest.run "sharded"
    [ ( "spsc-ring",
        [ QCheck_alcotest.to_alcotest ~long:false ring_model_prop;
          Alcotest.test_case "capacity rounds up" `Quick
            test_ring_capacity_rounds_up;
          Alcotest.test_case "full and empty" `Quick test_ring_full_and_empty;
          Alcotest.test_case "cross-domain FIFO" `Quick test_ring_cross_domain ]
      );
      ( "sharded-engine",
        [ Alcotest.test_case "single domain passthrough" `Quick
            test_single_domain_passthrough;
          Alcotest.test_case "cross-shard arrival exact" `Quick
            test_cross_shard_arrival_exact;
          Alcotest.test_case "ping-pong matches single engine" `Quick
            test_ping_pong_matches_single_engine;
          Alcotest.test_case "repeated run deterministic" `Quick
            test_repeated_run_deterministic;
          Alcotest.test_case "idle skip" `Quick test_idle_skip;
          Alcotest.test_case "channel validation" `Quick
            test_channel_validation;
          Alcotest.test_case "send_at below lookahead" `Quick
            test_send_at_below_lookahead_rejected ] );
      ( "scale-sharded",
        [ Alcotest.test_case "merge identical across domains" `Quick
            test_merge_identical_across_domains;
          Alcotest.test_case "repeatable" `Quick test_scale_sharded_repeatable;
          Alcotest.test_case "monitors hold per cell" `Quick
            test_monitors_hold_per_cell;
          Alcotest.test_case "counters consistent" `Quick
            test_scale_sharded_counters_consistent ] );
      ( "oracle",
        [ Alcotest.test_case "generate domain independent" `Quick
            test_oracle_generate_domain_independent ] ) ]
