(* Host-stack realism layer (PR9): differential + property suite.

   The layer — finite receive socket buffer, DRS rwnd autotuning, GRO
   coalescing at the sink's ingress — must be invisible when disabled
   (the stored goldens pin that byte-for-byte; here the equivalences
   are proven directly against live traces), must satisfy its
   accounting invariants under arbitrary operation sequences, and must
   reproduce the paper's headline claim under host-stack realism:
   TCP-PR completes without spurious retransmissions where the
   duplicate-ACK variants fast-retransmit spuriously. *)

let collect_lines probe =
  let buffer = Buffer.create 4096 in
  Sim.Trace.on probe (fun event ->
      Buffer.add_string buffer (Tcp.Probe.to_line event);
      Buffer.add_char buffer '\n');
  buffer

let bounded_config =
  { Tcp.Config.default with
    Tcp.Config.total_segments = Some 80;
    min_rto = 0.2;
    initial_rto = 1.;
    max_rto = 16. }

(* An enormous buffer an 80-segment transfer can never pressure: with
   an instant reader the advertised window never binds, so the only
   difference from the disabled layer is that acknowledgements carry a
   finite window — which must not change a single event. *)
let huge_buffer_config =
  { bounded_config with
    Tcp.Config.rcv_buf_segments = Some 1_000_000;
    rcv_buf_max_segments = 1_000_000 }

(* Fig. 2 dumbbell pairing (variant under test vs TCP-SACK), the same
   shape as the stored goldens. [coalesce] optionally arms GRO on the
   sink's ingress links. *)
let run_dumbbell ?coalesce ~config (module M : Tcp.Sender.S) =
  let engine = Sim.Engine.create () in
  let topo =
    Topo.Dumbbell.create engine ~bottleneck_bandwidth_bps:1.5e6
      ~queue_capacity:10 ()
  in
  let network = topo.Topo.Dumbbell.network in
  (match coalesce with
  | Some (timer_s, max_burst) ->
    let sink = Net.Node.id topo.Topo.Dumbbell.sinks.(0) in
    List.iter
      (fun link ->
        if Net.Link.dst link = sink then
          Net.Link.set_coalescing link ~timer_s ~max_burst)
      (Net.Network.links network)
  | None -> ());
  let probe = Tcp.Probe.create () in
  let buffer = collect_lines probe in
  let connect flow sender =
    Tcp.Connection.create ~probe network ~flow
      ~src:topo.Topo.Dumbbell.sources.(0)
      ~dst:topo.Topo.Dumbbell.sinks.(0)
      ~sender ~config
      ~route_data:(fun () -> Topo.Dumbbell.route_forward topo ~pair:0)
      ~route_ack:(fun () -> Topo.Dumbbell.route_reverse topo ~pair:0)
      ()
  in
  let main = connect 0 (module M : Tcp.Sender.S) in
  let competitor = connect 1 (snd Experiments.Variants.tcp_sack) in
  Tcp.Connection.start main ~at:0.;
  Tcp.Connection.start competitor ~at:0.05;
  Sim.Engine.run engine ~until:60.;
  (Buffer.contents buffer, main)

(* Fig. 6 lattice, epsilon = 0: maximal persistent reordering. *)
let run_lattice ?coalesce ~config (module M : Tcp.Sender.S) =
  let engine = Sim.Engine.create () in
  let topo = Topo.Multipath_lattice.create engine ~path_hops:[ 2; 3; 4 ] () in
  let network = topo.Topo.Multipath_lattice.network in
  (match coalesce with
  | Some (timer_s, max_burst) ->
    let sink = Net.Node.id topo.Topo.Multipath_lattice.destination in
    List.iter
      (fun link ->
        if Net.Link.dst link = sink then
          Net.Link.set_coalescing link ~timer_s ~max_burst)
      (Net.Network.links network)
  | None -> ());
  let probe = Tcp.Probe.create () in
  let buffer = collect_lines probe in
  let rng = Sim.Rng.create 42 in
  let sampler label =
    Multipath.Epsilon_routing.for_lattice (Sim.Rng.split rng label) ~epsilon:0.
      topo
  in
  let fwd = sampler "fwd" and rev = sampler "rev" in
  let connection =
    Tcp.Connection.create ~probe network ~flow:0
      ~src:topo.Topo.Multipath_lattice.source
      ~dst:topo.Topo.Multipath_lattice.destination
      ~sender:(module M : Tcp.Sender.S)
      ~config
      ~route_data:(fun () ->
        Multipath.Epsilon_routing.route fwd
          topo.Topo.Multipath_lattice.forward_routes)
      ~route_ack:(fun () ->
        Multipath.Epsilon_routing.route rev
          topo.Topo.Multipath_lattice.reverse_routes)
      ()
  in
  Tcp.Connection.start connection ~at:0.;
  Sim.Engine.run engine ~until:60.;
  (Buffer.contents buffer, connection)

let first_diff a b =
  let la = String.split_on_char '\n' a and lb = String.split_on_char '\n' b in
  let rec scan n la lb =
    match (la, lb) with
    | [], [] -> "traces differ but no line does"
    | x :: _, [] | [], x :: _ -> Printf.sprintf "line %d: one trace ends at %S" n x
    | x :: la', y :: lb' ->
      if String.equal x y then scan (n + 1) la' lb'
      else Printf.sprintf "line %d:\n  a: %s\n  b: %s" n x y
  in
  scan 1 la lb

let check_identical what a b =
  if not (String.equal a b) then
    Alcotest.failf "%s: traces diverge at %s" what (first_diff a b)

(* --- differential: the layer off (or inert) is byte-invisible ------- *)

let test_unbounded_equivalence_dumbbell () =
  List.iter
    (fun (name, sender) ->
      let base, _ = run_dumbbell ~config:bounded_config sender in
      let huge, _ = run_dumbbell ~config:huge_buffer_config sender in
      check_identical
        (Printf.sprintf "%s dumbbell: disabled vs huge finite buffer" name)
        base huge)
    [ Experiments.Variants.tcp_pr; Experiments.Variants.tcp_sack ]

let test_unbounded_equivalence_lattice () =
  List.iter
    (fun (name, sender) ->
      let base, _ = run_lattice ~config:bounded_config sender in
      let huge, _ = run_lattice ~config:huge_buffer_config sender in
      check_identical
        (Printf.sprintf "%s lattice: disabled vs huge finite buffer" name)
        base huge)
    [ Experiments.Variants.tcp_pr;
      ("TD-FR", (module Tcp.Td_fr : Tcp.Sender.S)) ]

let test_coalescing_burst1_identity () =
  let base, _ = run_dumbbell ~config:bounded_config (snd Experiments.Variants.tcp_pr) in
  let b1, _ =
    run_dumbbell ~coalesce:(0.002, 1) ~config:bounded_config
      (snd Experiments.Variants.tcp_pr)
  in
  check_identical "coalescing max_burst=1 vs off" base b1

let test_coalescing_timer0_identity () =
  let base, _ = run_lattice ~config:bounded_config (snd Experiments.Variants.tcp_pr) in
  let t0, _ =
    run_lattice ~coalesce:(0., 4) ~config:bounded_config
      (snd Experiments.Variants.tcp_pr)
  in
  check_identical "coalescing timer=0 vs off" base t0

(* --- qcheck: buffer accounting invariants --------------------------- *)

let mss = Tcp.Config.default.Tcp.Config.mss

let buffer_accounting_prop =
  QCheck.Test.make ~count:200 ~name:"rcv_buffer accounting invariants"
    QCheck.(pair (int_range 1 32) (list_of_size Gen.(int_range 0 400) (int_bound 4)))
    (fun (capacity, ops) ->
      let buf =
        Tcp.Rcv_buffer.create ~mss ~capacity_segments:capacity
          ~max_segments:(capacity * 4) ~autotune:true
      in
      let now = ref 0. in
      List.iter
        (fun op ->
          (match op with
          | 0 -> ignore (Tcp.Rcv_buffer.admit_in_order buf)
          | 1 -> ignore (Tcp.Rcv_buffer.admit_out_of_order buf)
          | 2 ->
            if Tcp.Rcv_buffer.out_of_order_bytes buf >= mss then
              Tcp.Rcv_buffer.promote buf ~segments:1
          | 3 ->
            if Tcp.Rcv_buffer.unread_segments buf > 0 then
              Tcp.Rcv_buffer.app_read buf ~segments:1
          | _ ->
            now := !now +. 0.01;
            Tcp.Rcv_buffer.on_delivered buf ~now:!now ~bytes:mss);
          let used = Tcp.Rcv_buffer.used_bytes buf in
          let free = Tcp.Rcv_buffer.free_bytes buf in
          let cap = Tcp.Rcv_buffer.capacity_bytes buf in
          if
            Tcp.Rcv_buffer.in_order_bytes buf
            + Tcp.Rcv_buffer.out_of_order_bytes buf
            <> used
          then QCheck.Test.fail_report "in_order + out_of_order <> used";
          if used < 0 || free < 0 then
            QCheck.Test.fail_report "negative accounting";
          if free + used <> cap then
            QCheck.Test.fail_report "free + used <> capacity";
          if cap < capacity * mss || cap > capacity * 4 * mss then
            QCheck.Test.fail_report "capacity left [initial, max]";
          if Tcp.Rcv_buffer.rwnd_segments buf * mss > free then
            QCheck.Test.fail_report "advertised window exceeds free space")
        ops;
      true)

let drs_monotone_prop =
  QCheck.Test.make ~count:200 ~name:"DRS capacity monotone, bounded by cap"
    QCheck.(list_of_size Gen.(int_range 1 200) (pair (float_range 0.001 0.05) (int_range 1 8)))
    (fun deliveries ->
      let buf =
        Tcp.Rcv_buffer.create ~mss ~capacity_segments:8 ~max_segments:64
          ~autotune:true
      in
      let now = ref 0. in
      let last_cap = ref (Tcp.Rcv_buffer.capacity_bytes buf) in
      List.iter
        (fun (dt, segs) ->
          now := !now +. dt;
          Tcp.Rcv_buffer.on_delivered buf ~now:!now ~bytes:(segs * mss);
          let cap = Tcp.Rcv_buffer.capacity_bytes buf in
          if cap < !last_cap then QCheck.Test.fail_report "capacity shrank";
          if cap > 64 * mss then QCheck.Test.fail_report "capacity beyond cap";
          last_cap := cap)
        deliveries;
      true)

let coalescing_identity_prop =
  QCheck.Test.make ~count:8 ~name:"max_burst=1 trace-identical at any timer"
    QCheck.(float_range 0.0002 0.004)
    (fun timer_s ->
      let base, _ =
        run_dumbbell ~config:bounded_config (snd Experiments.Variants.tcp_pr)
      in
      let b1, _ =
        run_dumbbell ~coalesce:(timer_s, 1) ~config:bounded_config
          (snd Experiments.Variants.tcp_pr)
      in
      String.equal base b1)

(* --- zero-window persistence and reopening -------------------------- *)

(* The hoststack golden configuration: a 16-segment buffer (autotuned
   to at most 24) drained at 10 reads/s against a ~125 segment/s path
   forces standing zero windows; the transfer must still complete, via
   the persist re-arm on the sender and the repeated window-reopen
   announcements from the app-drain timer. *)
let pressured_config =
  { bounded_config with
    Tcp.Config.rcv_buf_segments = Some 16;
    rcv_buf_max_segments = 24;
    rcv_autotune = true;
    rcv_app_rate = Some 10. }

let test_zero_window_liveness () =
  let engine = Sim.Engine.create () in
  let topo =
    Topo.Dumbbell.create engine ~bottleneck_bandwidth_bps:1.5e6
      ~queue_capacity:10 ()
  in
  let network = topo.Topo.Dumbbell.network in
  let probe = Tcp.Probe.create () in
  let monitors =
    Check.Monitor.for_variant ~variant:"TCP-PR" ~config:pressured_config
  in
  Check.Monitor.arm probe monitors;
  let connection =
    Tcp.Connection.create ~probe network ~flow:0
      ~src:topo.Topo.Dumbbell.sources.(0)
      ~dst:topo.Topo.Dumbbell.sinks.(0)
      ~sender:(snd Experiments.Variants.tcp_pr)
      ~config:pressured_config
      ~route_data:(fun () -> Topo.Dumbbell.route_forward topo ~pair:0)
      ~route_ack:(fun () -> Topo.Dumbbell.route_reverse topo ~pair:0)
      ()
  in
  Tcp.Connection.start connection ~at:0.;
  Sim.Engine.run engine ~until:120.;
  Alcotest.(check bool)
    "transfer completes despite standing zero windows" true
    (Tcp.Connection.finished connection);
  Alcotest.(check bool)
    "zero windows were actually advertised" true
    (Tcp.Connection.receiver_zero_windows connection > 0);
  Alcotest.(check bool)
    "window-reopen announcements were sent" true
    (Tcp.Connection.window_updates_sent connection > 0);
  List.iter
    (fun m ->
      Alcotest.(check int)
        (Printf.sprintf "monitor %s clean" (Check.Monitor.name m))
        0
        (Check.Monitor.violation_count m))
    monitors

(* --- the paper's claim under host-stack realism --------------------- *)

(* Persistent reordering (lattice, epsilon = 0) with GRO coalescing and
   a finite (instantly-read) receive buffer: TCP-PR's timer-only loss
   detection completes the transfer without a single spurious
   retransmission, while every duplicate-ACK variant fast-retransmits
   spuriously — segments the receiver then counts as duplicates. *)
let realism_config =
  { bounded_config with
    Tcp.Config.rcv_buf_segments = Some 32;
    rcv_buf_max_segments = 64;
    rcv_autotune = true }

let metric name c =
  match List.assoc_opt name (Tcp.Connection.sender_metrics c) with
  | Some v -> v
  | None -> Alcotest.failf "sender metric %s missing" name

let test_spurious_retransmit_differential () =
  let coalesce = (0.001, 4) in
  let _, pr =
    run_lattice ~coalesce ~config:realism_config
      (snd Experiments.Variants.tcp_pr)
  in
  Alcotest.(check bool) "TCP-PR completes" true (Tcp.Connection.finished pr);
  Alcotest.(check int) "TCP-PR: no spurious retransmissions" 0
    (Tcp.Connection.receiver_duplicates pr);
  List.iter
    (fun (name, sender) ->
      let _, c = run_lattice ~coalesce ~config:realism_config sender in
      Alcotest.(check bool)
        (Printf.sprintf "%s completes" name)
        true
        (Tcp.Connection.finished c);
      if metric "fast_retransmits" c <= 0. then
        Alcotest.failf "%s: expected spurious fast retransmits under \
                        persistent reordering, got none"
          name)
    [ ("NewReno", (module Tcp.Newreno : Tcp.Sender.S));
      Experiments.Variants.tcp_sack;
      ("TD-FR", (module Tcp.Td_fr : Tcp.Sender.S)) ]

(* --- oracle sweep with the layer forced on -------------------------- *)

(* Every seed's scenario, with coalescing and a finite buffer forced on
   where the draw left them off: the full monitor suite (including
   rwnd-conservation and zero-window-liveness) must stay clean and the
   transfer must complete for both the paper's protagonists. *)
let test_oracle_hoststack_sweep () =
  for seed = 0 to 9 do
    let s = Check.Oracle.generate ~seed () in
    let s =
      { s with
        Check.Oracle.rcv_buf =
          (match s.Check.Oracle.rcv_buf with Some _ as b -> b | None -> Some 32);
        coalesce =
          (match s.Check.Oracle.coalesce with
          | Some _ as c -> c
          | None -> Some (0.001, 4)) }
    in
    List.iter
      (fun variant ->
        let report = Check.Oracle.run s ~variant in
        if not (Check.Oracle.passed report) then
          Alcotest.failf "%a" Check.Oracle.pp_report report)
      [ Experiments.Variants.tcp_pr; Experiments.Variants.tcp_sack ]
  done

(* ------------------------------------------------------------------ *)

let () =
  let qcheck = QCheck_alcotest.to_alcotest ~long:false in
  Alcotest.run "hoststack"
    [ ( "differential",
        [ Alcotest.test_case "unbounded equivalence (dumbbell)" `Quick
            test_unbounded_equivalence_dumbbell;
          Alcotest.test_case "unbounded equivalence (lattice)" `Quick
            test_unbounded_equivalence_lattice;
          Alcotest.test_case "coalescing burst=1 identity" `Quick
            test_coalescing_burst1_identity;
          Alcotest.test_case "coalescing timer=0 identity" `Quick
            test_coalescing_timer0_identity ] );
      ( "buffer-properties",
        [ qcheck buffer_accounting_prop; qcheck drs_monotone_prop;
          qcheck coalescing_identity_prop ] );
      ( "pressure",
        [ Alcotest.test_case "zero-window liveness" `Quick
            test_zero_window_liveness ] );
      ( "paper-claim",
        [ Alcotest.test_case "spurious retransmit differential" `Quick
            test_spurious_retransmit_differential ] );
      ( "oracle-sweep",
        [ Alcotest.test_case "monitors clean, layer forced on" `Slow
            test_oracle_hoststack_sweep ] ) ]
