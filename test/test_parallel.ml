(* Parallel runner: Domain_pool / Runner.parallel_map semantics, and
   the determinism regression the pool is designed around — a grid run
   on 4 domains must produce exactly the same table as the sequential
   run, point for point, bit for bit. *)

let test_pool_matches_sequential () =
  let items = Array.init 100 Fun.id in
  let f x = (x * x) + 1 in
  Alcotest.(check (array int))
    "order preserved" (Array.map f items)
    (Sim.Domain_pool.map ~jobs:4 f items)

let test_pool_empty () =
  Alcotest.(check (array int))
    "empty input" [||]
    (Sim.Domain_pool.map ~jobs:4 (fun x -> x) [||])

let test_pool_more_jobs_than_items () =
  Alcotest.(check (array int))
    "jobs clamped to item count" [| 2; 4 |]
    (Sim.Domain_pool.map ~jobs:16 (fun x -> 2 * x) [| 1; 2 |])

exception Job_failed of int

let test_pool_propagates_exception () =
  let items = Array.init 8 Fun.id in
  match
    Sim.Domain_pool.map ~jobs:4
      (fun x -> if x = 5 then raise (Job_failed x) else x)
      items
  with
  | _ -> Alcotest.fail "expected the job's exception"
  | exception Job_failed 5 -> ()

let test_parallel_map_list () =
  let xs = List.init 17 Fun.id in
  Alcotest.(check (list int))
    "parallel_map = List.map"
    (List.map (fun x -> 3 * x) xs)
    (Experiments.Runner.parallel_map ~jobs:3 (fun x -> 3 * x) xs)

(* Small Fig. 2 grid: 4 domains vs sequential must agree exactly
   (same seeds, same ordering, same floats). *)
let test_fig2_deterministic_across_jobs () =
  let series jobs =
    Experiments.Fig2_fairness.series ~seed:1 ~warmup:5. ~window:10.
      ~counts:[ 1; 2 ] ~jobs Experiments.Fig2_fairness.Dumbbell ()
  in
  let sequential = series 1 and parallel = series 4 in
  Alcotest.(check bool)
    "fig2: jobs:4 table equals jobs:1 table" true (sequential = parallel);
  Alcotest.(check string)
    "fig2: rendered tables byte-identical"
    (Stats.Table.to_csv (Experiments.Fig2_fairness.to_table sequential))
    (Stats.Table.to_csv (Experiments.Fig2_fairness.to_table parallel))

(* Nested use: a pool job may itself run a pool map — every [map]
   call owns its queue and domains, there is no global pool state to
   re-enter. The outer map must still return results in input order. *)
let test_pool_nested () =
  let inner = [| 1; 2; 3 |] in
  let outer =
    Sim.Domain_pool.map ~jobs:2
      (fun x ->
        Array.fold_left ( + ) 0
          (Sim.Domain_pool.map ~jobs:2 (fun y -> x * y) inner))
      [| 1; 10; 100; 1000 |]
  in
  Alcotest.(check (array int))
    "nested maps compose" [| 6; 60; 600; 6000 |] outer

(* Same for a small Fig. 6 grid (multi-path lattice, two variants). *)
let test_fig6_deterministic_across_jobs () =
  let grid jobs =
    Experiments.Fig6_multipath.grid ~seed:1 ~warmup:2. ~duration:8.
      ~epsilons:[ 0.; 500. ] ~delays:[ 0.010 ]
      ~variants:[ Experiments.Variants.tcp_pr; Experiments.Variants.tcp_sack ]
      ~jobs ()
  in
  let sequential = grid 1 and parallel = grid 4 in
  Alcotest.(check bool)
    "fig6: jobs:4 grid equals jobs:1 grid" true (sequential = parallel);
  Alcotest.(check string)
    "fig6: rendered tables byte-identical"
    (Stats.Table.to_csv
       (Experiments.Fig6_multipath.to_table ~delay_s:0.010 sequential))
    (Stats.Table.to_csv
       (Experiments.Fig6_multipath.to_table ~delay_s:0.010 parallel))

let () =
  Alcotest.run "parallel"
    [ ( "domain-pool",
        [ Alcotest.test_case "matches sequential" `Quick
            test_pool_matches_sequential;
          Alcotest.test_case "empty" `Quick test_pool_empty;
          Alcotest.test_case "more jobs than items" `Quick
            test_pool_more_jobs_than_items;
          Alcotest.test_case "propagates exception" `Quick
            test_pool_propagates_exception;
          Alcotest.test_case "nested use" `Quick test_pool_nested;
          Alcotest.test_case "parallel_map over lists" `Quick
            test_parallel_map_list ] );
      ( "determinism",
        [ Alcotest.test_case "fig2 grid identical across jobs" `Quick
            test_fig2_deterministic_across_jobs;
          Alcotest.test_case "fig6 grid identical across jobs" `Quick
            test_fig6_deterministic_across_jobs ] ) ]
