(* End-to-end integration tests: every sender variant driven over the
   real simulated network — clean paths, lossy paths, reordering paths —
   plus small versions of the paper's experiments. *)

let variants : (string * (module Tcp.Sender.S)) list =
  [ ("TCP-PR", (module Core.Tcp_pr));
    ("TCP-SACK", (module Tcp.Sack));
    ("NewReno", (module Tcp.Newreno));
    ("TD-FR", (module Tcp.Td_fr));
    ("DSACK-NM", (module Tcp.Dsack_nm));
    ("Inc by 1", (module Tcp.Inc_by_1));
    ("Inc by N", (module Tcp.Inc_by_n));
    ("EWMA", (module Tcp.Dupthresh_ewma)) ]

(* A single duplex path with optional loss injection on the data
   direction. *)
let single_path ?(loss = Net.Loss_model.perfect) ?(bandwidth = 8e6)
    ?(delay = 0.02) () =
  let engine = Sim.Engine.create () in
  let network = Net.Network.create engine in
  let source = Net.Network.add_node network in
  let sink = Net.Network.add_node network in
  ignore
    (Net.Network.add_link network ~src:source ~dst:sink ~bandwidth_bps:bandwidth
       ~delay_s:delay ~capacity:50 ~loss ());
  ignore
    (Net.Network.add_link network ~src:sink ~dst:source ~bandwidth_bps:bandwidth
       ~delay_s:delay ~capacity:50 ());
  (engine, network, source, sink)

let run_transfer ?loss ~total ~horizon (sender : (module Tcp.Sender.S)) =
  let engine, network, source, sink = single_path ?loss () in
  let config =
    { Tcp.Config.default with Tcp.Config.total_segments = Some total }
  in
  let connection =
    Tcp.Connection.create network ~flow:0 ~src:source ~dst:sink ~sender ~config
      ~route_data:(fun () -> [| Net.Node.id sink |])
      ~route_ack:(fun () -> [| Net.Node.id source |])
      ()
  in
  Tcp.Connection.start connection ~at:0.;
  Sim.Engine.run engine ~until:horizon;
  connection

let test_clean_transfer_completes (name, sender) =
  Alcotest.test_case (name ^ " clean transfer") `Quick (fun () ->
      let total = 500 in
      let c = run_transfer ~total ~horizon:60. sender in
      Alcotest.(check bool) "finished" true (Tcp.Connection.finished c);
      Alcotest.(check int) "every segment delivered in order" total
        (Tcp.Connection.received_segments c);
      Alcotest.(check bool) "finish time recorded" true
        (Tcp.Connection.finished_at c <> None);
      (* A clean path must need no retransmissions at all. *)
      Alcotest.(check int) "no duplicates at sink" 0
        (Tcp.Connection.receiver_duplicates c))

let test_lossy_transfer_completes (name, sender) =
  Alcotest.test_case (name ^ " 3% loss transfer") `Quick (fun () ->
      let rng = Sim.Rng.create 7 in
      let loss = Net.Loss_model.bernoulli rng ~p:0.03 in
      let total = 300 in
      let c = run_transfer ~loss ~total ~horizon:300. sender in
      Alcotest.(check bool) "finished despite loss" true
        (Tcp.Connection.finished c);
      Alcotest.(check int) "every segment delivered" total
        (Tcp.Connection.received_segments c))

(* Two parallel paths with very different delays, chosen alternately
   packet by packet: heavy persistent reordering but zero loss. TCP-PR
   must complete without a single (false) retransmission reaching the
   sink as duplicate... duplicates are allowed for the dupack-based
   variants — only completion is required of them. *)
let reordering_network () =
  let engine = Sim.Engine.create () in
  let network = Net.Network.create engine in
  let source = Net.Network.add_node network in
  let mid_fast = Net.Network.add_node network in
  let mid_slow = Net.Network.add_node network in
  let sink = Net.Network.add_node network in
  let duplex src dst delay =
    ignore
      (Net.Network.add_duplex network ~src ~dst ~bandwidth_bps:10e6
         ~delay_s:delay ~capacity:100 ())
  in
  duplex source mid_fast 0.005;
  duplex mid_fast sink 0.005;
  duplex source mid_slow 0.040;
  duplex mid_slow sink 0.040;
  let fast = [| Net.Node.id mid_fast; Net.Node.id sink |] in
  let slow = [| Net.Node.id mid_slow; Net.Node.id sink |] in
  let rev_fast = [| Net.Node.id mid_fast; Net.Node.id source |] in
  let rev_slow = [| Net.Node.id mid_slow; Net.Node.id source |] in
  (engine, network, source, sink, (fast, slow), (rev_fast, rev_slow))

let run_reordering ~total (sender : (module Tcp.Sender.S)) =
  let engine, network, source, sink, (fast, slow), (rev_fast, rev_slow) =
    reordering_network ()
  in
  let flip = ref false in
  let alternate a b () =
    flip := not !flip;
    if !flip then a else b
  in
  let config =
    { Tcp.Config.default with Tcp.Config.total_segments = Some total }
  in
  let connection =
    Tcp.Connection.create network ~flow:0 ~src:source ~dst:sink ~sender ~config
      ~route_data:(alternate fast slow)
      ~route_ack:(alternate rev_fast rev_slow)
      ()
  in
  Tcp.Connection.start connection ~at:0.;
  Sim.Engine.run engine ~until:300.;
  connection

let test_reordering_transfer_completes (name, sender) =
  Alcotest.test_case (name ^ " reordering transfer") `Quick (fun () ->
      let total = 300 in
      let c = run_reordering ~total sender in
      Alcotest.(check bool) "finished under reordering" true
        (Tcp.Connection.finished c);
      Alcotest.(check int) "every segment delivered" total
        (Tcp.Connection.received_segments c))

let test_tcp_pr_no_spurious_under_reordering () =
  (* The headline claim: persistent reordering with zero loss causes
     TCP-PR no retransmissions at all. *)
  let c = run_reordering ~total:400 (module Core.Tcp_pr) in
  Alcotest.(check bool) "finished" true (Tcp.Connection.finished c);
  Alcotest.(check int) "no duplicates at sink" 0
    (Tcp.Connection.receiver_duplicates c);
  let retx = List.assoc "retransmits" (Tcp.Connection.sender_metrics c) in
  Alcotest.(check (float 0.)) "no retransmissions" 0. retx

let test_sack_spurious_under_reordering () =
  (* And the contrast: plain SACK retransmits spuriously in the same
     conditions (every such retransmission arrives as a duplicate). *)
  let c = run_reordering ~total:400 (module Tcp.Sack) in
  Alcotest.(check bool) "sack does retransmit" true
    (Tcp.Connection.receiver_duplicates c > 0)

let test_fairness_small () =
  let result =
    Experiments.Runner.dumbbell_fairness ~seed:3 ~warmup:10. ~window:20.
      ~specs:
        [ { Experiments.Runner.label = "TCP-PR";
            sender = (module Core.Tcp_pr);
            count = 2 };
          { Experiments.Runner.label = "TCP-SACK";
            sender = (module Tcp.Sack);
            count = 2 } ]
      ()
  in
  let all = Experiments.Runner.all_throughputs result in
  let pr =
    Stats.Fairness.mean_normalized
      ~group:(Experiments.Runner.group result ~label:"TCP-PR")
      ~all
  in
  Alcotest.(check bool)
    (Printf.sprintf "TCP-PR mean normalized near 1 (got %.3f)" pr)
    true
    (pr > 0.7 && pr < 1.3)

let test_multipath_headline () =
  (* 20-second version of Fig. 6's extreme points. *)
  let throughput sender epsilon =
    Experiments.Runner.multipath_throughput ~seed:5 ~duration:20. ~epsilon
      ~sender ()
  in
  let pr_multi = throughput (module Core.Tcp_pr : Tcp.Sender.S) 0. in
  let sack_multi = throughput (module Tcp.Sack : Tcp.Sender.S) 0. in
  let pr_single = throughput (module Core.Tcp_pr : Tcp.Sender.S) 500. in
  let sack_single = throughput (module Tcp.Sack : Tcp.Sender.S) 500. in
  Alcotest.(check bool)
    (Printf.sprintf "PR multi-path beats single (%.1f vs %.1f)" pr_multi
       pr_single)
    true (pr_multi > pr_single *. 1.5);
  Alcotest.(check bool)
    (Printf.sprintf "SACK collapses under reordering (%.1f vs %.1f)" sack_multi
       sack_single)
    true
    (sack_multi < sack_single /. 2.);
  Alcotest.(check bool)
    (Printf.sprintf "PR and SACK comparable single-path (%.1f vs %.1f)"
       pr_single sack_single)
    true
    (pr_single > sack_single *. 0.7)


(* The headline orderings must hold across seeds, not just for one lucky
   draw. *)
let test_multipath_ordering_stable_across_seeds () =
  List.iter
    (fun seed ->
      let tp sender =
        Experiments.Runner.multipath_throughput ~seed ~duration:15. ~epsilon:0.
          ~sender ()
      in
      let pr = tp (module Core.Tcp_pr : Tcp.Sender.S) in
      let sack = tp (module Tcp.Sack : Tcp.Sender.S) in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: PR (%.1f) dominates SACK (%.1f)" seed pr sack)
        true
        (pr > 4. *. sack))
    [ 2; 3; 5 ]


(* Under full multi-path reordering, TCP-PR flows still share fairly
   among themselves and keep the aggregate bandwidth (extension: the
   paper measures one flow at a time). *)
let test_multipath_pr_fairness () =
  let r =
    Experiments.Runner.multipath_fairness ~seed:1 ~epsilon:0. ~warmup:15.
      ~duration:45.
      ~specs:
        [ { Experiments.Runner.label = "PR";
            sender = (module Core.Tcp_pr);
            count = 4 } ]
      ()
  in
  let all = Experiments.Runner.all_throughputs r in
  let total = List.fold_left ( +. ) 0. all in
  Alcotest.(check bool)
    (Printf.sprintf "aggregate kept (%.1f Mb/s)" total)
    true (total > 20.);
  Alcotest.(check bool)
    (Printf.sprintf "fair among themselves (Jain %.3f)" (Stats.Fairness.jain all))
    true
    (Stats.Fairness.jain all > 0.8)

let test_cross_traffic_spawns () =
  let engine = Sim.Engine.create () in
  let lot = Topo.Parking_lot.create engine () in
  let rng = Sim.Rng.create 11 in
  let flows =
    Workload.Cross_traffic.spawn lot ~flows_per_pair:2 ~first_flow:100
      ~config:Tcp.Config.default ~start_rng:rng ~start_window:1. ()
  in
  Alcotest.(check int) "12 cross flows" 12 (List.length flows);
  Sim.Engine.run engine ~until:5.;
  (* Every cross pair moves data. *)
  List.iter
    (fun flow ->
      Alcotest.(check bool)
        (flow.Workload.Ftp.label ^ " making progress")
        true
        (Tcp.Connection.received_segments flow.Workload.Ftp.connection > 0))
    flows

let test_ftp_snapshot_throughput () =
  let engine = Sim.Engine.create () in
  let d = Topo.Dumbbell.create engine () in
  let rng = Sim.Rng.create 13 in
  let flows =
    Workload.Ftp.spawn d.Topo.Dumbbell.network
      ~sender:(module Tcp.Sack : Tcp.Sender.S)
      ~label:"ftp" ~count:1 ~first_flow:0 ~src:d.Topo.Dumbbell.sources.(0)
      ~dst:d.Topo.Dumbbell.sinks.(0)
      ~route_data:(fun () -> Topo.Dumbbell.route_forward d ~pair:0)
      ~route_ack:(fun () -> Topo.Dumbbell.route_reverse d ~pair:0)
      ~config:Tcp.Config.default ~start_rng:rng ~start_window:0. ()
  in
  Sim.Engine.run engine ~until:5.;
  let snapshot = Workload.Ftp.snapshot_bytes flows in
  Sim.Engine.run engine ~until:15.;
  let rates =
    Workload.Ftp.throughputs flows ~window_start_bytes:snapshot ~seconds:10.
  in
  match rates with
  | [ ("ftp", mbps) ] ->
    Alcotest.(check bool)
      (Printf.sprintf "near bottleneck rate (got %.2f)" mbps)
      true
      (mbps > 10. && mbps < 15.5)
  | _ -> Alcotest.fail "expected one flow"

let () =
  Alcotest.run "integration"
    [ ("clean-path", List.map test_clean_transfer_completes variants);
      ("lossy-path", List.map test_lossy_transfer_completes variants);
      ("reordering-path", List.map test_reordering_transfer_completes variants);
      ( "paper-claims",
        [ Alcotest.test_case "TCP-PR immune to reordering" `Quick
            test_tcp_pr_no_spurious_under_reordering;
          Alcotest.test_case "SACK not immune" `Quick
            test_sack_spurious_under_reordering;
          Alcotest.test_case "fairness (small)" `Slow test_fairness_small;
          Alcotest.test_case "multipath headline" `Slow test_multipath_headline;
          Alcotest.test_case "ordering stable across seeds" `Slow
            test_multipath_ordering_stable_across_seeds;
          Alcotest.test_case "PR fairness under reordering" `Slow
            test_multipath_pr_fairness
        ] );
      ( "workload",
        [ Alcotest.test_case "cross traffic spawns" `Quick
            test_cross_traffic_spawns;
          Alcotest.test_case "ftp snapshot throughput" `Quick
            test_ftp_snapshot_throughput ] ) ]
