(* Tests for the observability layer: metric primitives (with qcheck
   properties over the log-scale histogram), the registry and its merge
   semantics, the flight recorder, the export sinks, the allocation-free
   record path, and the golden `report` snapshot. *)

module Metrics = Obs.Metrics
module Registry = Obs.Registry

(* ------------------------------------------------------------------ *)
(* Counter and gauge                                                   *)
(* ------------------------------------------------------------------ *)

let test_counter_basics () =
  let c = Metrics.Counter.create () in
  Alcotest.(check int) "zero" 0 (Metrics.Counter.get c);
  Metrics.Counter.incr c;
  Metrics.Counter.add c 4;
  Alcotest.(check int) "accumulated" 5 (Metrics.Counter.get c);
  let d = Metrics.Counter.create () in
  Metrics.Counter.add d 10;
  Metrics.Counter.merge_into ~into:c d;
  Alcotest.(check int) "merge adds" 15 (Metrics.Counter.get c);
  Metrics.Counter.reset c;
  Alcotest.(check int) "reset" 0 (Metrics.Counter.get c)

let test_gauge_peak () =
  let g = Metrics.Gauge.create () in
  Metrics.Gauge.set g 5;
  Metrics.Gauge.set g 2;
  Alcotest.(check int) "level" 2 (Metrics.Gauge.get g);
  Alcotest.(check int) "peak survives" 5 (Metrics.Gauge.peak g);
  Metrics.Gauge.add g 7;
  Alcotest.(check int) "add" 9 (Metrics.Gauge.get g);
  Alcotest.(check int) "peak updated" 9 (Metrics.Gauge.peak g);
  let h = Metrics.Gauge.create () in
  Metrics.Gauge.set h 3;
  Metrics.Gauge.merge_into ~into:h g;
  Alcotest.(check int) "merge takes max level" 9 (Metrics.Gauge.get h);
  Alcotest.(check int) "merge takes max peak" 9 (Metrics.Gauge.peak h)

(* ------------------------------------------------------------------ *)
(* Histogram                                                           *)
(* ------------------------------------------------------------------ *)

let record_all h values = List.iter (Metrics.Histogram.record h) values

let of_values values =
  let h = Metrics.Histogram.create () in
  record_all h values;
  h

(* Observable state of a histogram, for equality checks. *)
let state h =
  ( Array.to_list (Metrics.Histogram.buckets h),
    Metrics.Histogram.count h,
    Metrics.Histogram.sum h,
    Metrics.Histogram.min_value h,
    Metrics.Histogram.max_value h )

let test_histogram_empty () =
  let h = Metrics.Histogram.create () in
  Alcotest.(check int) "count" 0 (Metrics.Histogram.count h);
  Alcotest.(check int) "min" 0 (Metrics.Histogram.min_value h);
  Alcotest.(check int) "max" 0 (Metrics.Histogram.max_value h);
  Alcotest.(check bool) "quantile" true (Metrics.Histogram.quantile h 0.5 = None)

let test_histogram_edges () =
  Alcotest.(check int) "bucket 0 upper" 0 (Metrics.Histogram.upper_edge 0);
  Alcotest.(check int) "bucket 1" 1 (Metrics.Histogram.lower_edge 1);
  Alcotest.(check int) "bucket 1 upper" 1 (Metrics.Histogram.upper_edge 1);
  Alcotest.(check int) "bucket 4 lower" 8 (Metrics.Histogram.lower_edge 4);
  Alcotest.(check int) "bucket 4 upper" 15 (Metrics.Histogram.upper_edge 4);
  Alcotest.(check int) "index 0" 0 (Metrics.Histogram.index 0);
  Alcotest.(check int) "index -5" 0 (Metrics.Histogram.index (-5));
  Alcotest.(check int) "index 1" 1 (Metrics.Histogram.index 1);
  Alcotest.(check int) "index 8" 4 (Metrics.Histogram.index 8);
  Alcotest.(check int) "last bucket open-ended" max_int
    (Metrics.Histogram.upper_edge (Metrics.Histogram.bucket_count - 1));
  (* max_int fits its bit-width bucket even at the top of the range *)
  let k = Metrics.Histogram.index max_int in
  Alcotest.(check bool) "max_int in its bucket" true
    (Metrics.Histogram.lower_edge k <= max_int)

let small_int = QCheck.int_range (-100) 10_000

let values_gen = QCheck.(list_of_size (Gen.int_range 1 200) small_int)

(* Nearest-rank quantile of a raw sample list. *)
let exact_quantile values q =
  let sorted = List.sort compare values in
  let n = List.length sorted in
  let rank = max 1 (int_of_float (ceil (q *. float_of_int n))) in
  List.nth sorted (min (rank - 1) (n - 1))

let histogram_props =
  [ QCheck.Test.make ~name:"value lands in its bucket" ~count:500 small_int
      (fun v ->
        let k = Metrics.Histogram.index v in
        Metrics.Histogram.lower_edge k <= v
        && v <= Metrics.Histogram.upper_edge k);
    QCheck.Test.make ~name:"merge commutative" ~count:200
      QCheck.(pair values_gen values_gen)
      (fun (a, b) ->
        state (Metrics.Histogram.merge (of_values a) (of_values b))
        = state (Metrics.Histogram.merge (of_values b) (of_values a)));
    QCheck.Test.make ~name:"merge associative" ~count:200
      QCheck.(triple values_gen values_gen values_gen)
      (fun (a, b, c) ->
        let h x = of_values x in
        let m = Metrics.Histogram.merge in
        state (m (m (h a) (h b)) (h c)) = state (m (h a) (m (h b) (h c))));
    QCheck.Test.make ~name:"quantile brackets nearest rank" ~count:300
      QCheck.(pair values_gen (float_range 0.01 1.))
      (fun (values, q) ->
        let h = of_values values in
        match Metrics.Histogram.quantile h q with
        | None -> false
        | Some (lower, upper) ->
          let exact = exact_quantile values q in
          lower <= exact && exact <= upper);
    QCheck.Test.make ~name:"quantile_upper bounded by max" ~count:300
      QCheck.(pair values_gen (float_range 0.01 1.))
      (fun (values, q) ->
        let h = of_values values in
        match Metrics.Histogram.quantile_upper h q with
        | None -> false
        | Some v ->
          exact_quantile values q <= v
          && v <= Metrics.Histogram.max_value h);
    QCheck.Test.make ~name:"sharded then merged = single" ~count:200
      QCheck.(pair values_gen (int_range 1 8))
      (fun (values, shards) ->
        (* Deal values round-robin onto [shards] histograms, as a
           sharded parallel run would, then merge. *)
        let parts = Array.init shards (fun _ -> Metrics.Histogram.create ()) in
        List.iteri
          (fun i v -> Metrics.Histogram.record parts.(i mod shards) v)
          values;
        let merged = Metrics.Histogram.create () in
        Array.iter (fun h -> Metrics.Histogram.merge_into ~into:merged h) parts;
        state merged = state (of_values values)) ]

(* Negative values clamp into the underflow bucket (regression: they
   used to corrupt [sum] and [min_value] while still landing in bucket
   0, poisoning every aggregate downstream). *)
let test_histogram_negative_clamped () =
  let h = Metrics.Histogram.create () in
  Metrics.Histogram.record h (-7);
  Metrics.Histogram.record h 3;
  Alcotest.(check int) "count" 2 (Metrics.Histogram.count h);
  Alcotest.(check int) "underflow" 1 (Metrics.Histogram.underflow h);
  Alcotest.(check int) "sum unpolluted" 3 (Metrics.Histogram.sum h);
  Alcotest.(check int) "min clamped to 0" 0 (Metrics.Histogram.min_value h);
  Alcotest.(check int) "max" 3 (Metrics.Histogram.max_value h);
  let g = Metrics.Histogram.create () in
  Metrics.Histogram.record g (-1);
  Metrics.Histogram.merge_into ~into:h g;
  Alcotest.(check int) "merge adds underflow" 2 (Metrics.Histogram.underflow h)

let signed_values_gen =
  QCheck.(list_of_size (Gen.int_range 1 200) (int_range (-1000) 10_000))

let negative_value_props =
  [ QCheck.Test.make ~name:"arbitrary-sign record = clamped record"
      ~count:300 signed_values_gen (fun values ->
        let clamped = of_values (List.map (max 0) values) in
        state (of_values values) = state clamped);
    QCheck.Test.make ~name:"underflow counts the negatives" ~count:300
      signed_values_gen (fun values ->
        Metrics.Histogram.underflow (of_values values)
        = List.length (List.filter (fun v -> v < 0) values));
    QCheck.Test.make ~name:"aggregates never go negative" ~count:300
      signed_values_gen (fun values ->
        let h = of_values values in
        Metrics.Histogram.sum h >= 0
        && Metrics.Histogram.min_value h >= 0
        && Metrics.Histogram.max_value h >= 0) ]

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let test_registry_find_or_create () =
  let r = Registry.create () in
  let c = Registry.counter r "a" in
  Metrics.Counter.incr c;
  Alcotest.(check bool) "same handle" true (Registry.counter r "a" == c);
  Alcotest.(check int) "via handle" 1
    (Metrics.Counter.get (Registry.counter r "a"));
  Alcotest.(check int) "length" 1 (Registry.length r);
  Alcotest.(check bool) "mem" true (Registry.mem r "a")

let test_registry_kind_clash () =
  let r = Registry.create () in
  ignore (Registry.counter r "a");
  Alcotest.check_raises "gauge over counter"
    (Invalid_argument "Obs.Registry: \"a\" is a counter, not a gauge")
    (fun () -> ignore (Registry.gauge r "a"))

let test_registry_names_sorted () =
  let r = Registry.create () in
  ignore (Registry.counter r "zeta");
  ignore (Registry.gauge r "alpha");
  ignore (Registry.histogram r "mid");
  Alcotest.(check (list string))
    "sorted" [ "alpha"; "mid"; "zeta" ] (Registry.names r)

let test_registry_merge () =
  let a = Registry.create () in
  let b = Registry.create () in
  Metrics.Counter.add (Registry.counter a "c") 3;
  Metrics.Counter.add (Registry.counter b "c") 4;
  Metrics.Gauge.set (Registry.gauge a "g") 10;
  Metrics.Gauge.set (Registry.gauge b "g") 7;
  Registry.set_value a "v" 1.5;
  Registry.set_value b "v" 2.5;
  Metrics.Histogram.record (Registry.histogram a "h") 1;
  Metrics.Histogram.record (Registry.histogram b "h") 1;
  Metrics.Histogram.record (Registry.histogram b "h") 500;
  let merged = Registry.merge_all [ a; b ] in
  Alcotest.(check int) "counters add" 7
    (Metrics.Counter.get (Registry.counter merged "c"));
  Alcotest.(check int) "gauges max" 10
    (Metrics.Gauge.get (Registry.gauge merged "g"));
  Alcotest.(check (float 1e-9)) "values max" 2.5 (Registry.value merged "v");
  Alcotest.(check int) "histograms add" 3
    (Metrics.Histogram.count (Registry.histogram merged "h"))

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                     *)
(* ------------------------------------------------------------------ *)

let test_recorder_wraps () =
  let r = Obs.Flight_recorder.create ~capacity:3 in
  List.iter (Obs.Flight_recorder.note r) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check int) "total" 5 (Obs.Flight_recorder.total r);
  Alcotest.(check int) "length" 3 (Obs.Flight_recorder.length r);
  Alcotest.(check int) "overwritten" 2 (Obs.Flight_recorder.overwritten r);
  Alcotest.(check (list int))
    "last three, oldest first" [ 3; 4; 5 ]
    (Obs.Flight_recorder.to_list r)

let test_recorder_partial () =
  let r = Obs.Flight_recorder.create ~capacity:8 in
  List.iter (Obs.Flight_recorder.note r) [ 1; 2 ];
  Alcotest.(check (list int)) "in order" [ 1; 2 ] (Obs.Flight_recorder.to_list r);
  Alcotest.(check int) "nothing lost" 0 (Obs.Flight_recorder.overwritten r);
  Obs.Flight_recorder.clear r;
  Alcotest.(check int) "cleared" 0 (Obs.Flight_recorder.total r)

let test_recorder_attach () =
  let tap = Sim.Trace.tap () in
  let r = Obs.Flight_recorder.attach ~capacity:2 tap in
  Alcotest.(check bool) "arms the tap" true (Sim.Trace.armed tap);
  List.iter (Sim.Trace.emit tap) [ "a"; "b"; "c" ];
  Alcotest.(check (list string))
    "retains tail" [ "b"; "c" ] (Obs.Flight_recorder.to_list r)

let test_recorder_rejects_zero_capacity () =
  Alcotest.check_raises "capacity"
    (Invalid_argument "Flight_recorder.create: capacity < 1") (fun () ->
      ignore (Obs.Flight_recorder.create ~capacity:0))

(* ------------------------------------------------------------------ *)
(* Export                                                              *)
(* ------------------------------------------------------------------ *)

let sample_registry () =
  let r = Registry.create () in
  Metrics.Counter.add (Registry.counter r "pkts") 42;
  Metrics.Gauge.set (Registry.gauge r "depth") 3;
  Registry.set_value r "util" 0.5;
  record_all (Registry.histogram r "occ") [ 1; 2; 2; 9 ];
  r

let test_export_rows () =
  let rows = Obs.Export.rows (sample_registry ()) in
  let get name =
    match List.assoc_opt name rows with
    | Some v -> v
    | None -> Alcotest.failf "missing row %s" name
  in
  Alcotest.(check string) "counter" "42" (get "pkts");
  Alcotest.(check string) "gauge" "3" (get "depth");
  Alcotest.(check string) "gauge peak" "3" (get "depth.peak");
  Alcotest.(check string) "value" "0.5" (get "util");
  Alcotest.(check string) "hist count" "4" (get "occ.count");
  Alcotest.(check string) "hist max" "9" (get "occ.max");
  Alcotest.(check string) "hist p50 (bucket upper edge)" "3" (get "occ.p50");
  (* Metrics come out in sorted name order; a histogram's sub-rows keep
     their semantic order (count, mean, quantiles, max). *)
  Alcotest.(check (list string)) "deterministic row order"
    [ "depth"; "depth.peak"; "occ.count"; "occ.mean"; "occ.p50"; "occ.p99";
      "occ.max"; "pkts"; "util" ]
    (List.map fst rows)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_export_csv_and_json () =
  let r = sample_registry () in
  let csv = Obs.Export.to_csv r in
  Alcotest.(check bool) "csv header" true
    (String.length csv > 13 && String.sub csv 0 13 = "metric,value\n");
  let json = Obs.Export.to_json r in
  Alcotest.(check bool) "json has counter" true (contains json "\"pkts\": 42");
  Alcotest.(check bool) "json has value" true (contains json "\"util\": 0.5")

let test_sampler () =
  let r = sample_registry () in
  let s = Obs.Export.Sampler.create r [ "pkts"; "util" ] in
  Obs.Export.Sampler.sample s ~time:0.;
  Metrics.Counter.add (Registry.counter r "pkts") 8;
  Obs.Export.Sampler.sample s ~time:1.;
  Alcotest.(check int) "length" 2 (Obs.Export.Sampler.length s);
  Alcotest.(check string) "csv"
    "time,pkts,util\n0,42,0.5\n1,50,0.5\n"
    (Obs.Export.Sampler.to_csv s);
  Alcotest.check_raises "time goes backwards"
    (Invalid_argument "Export.Sampler.sample: time went backwards") (fun () ->
      Obs.Export.Sampler.sample s ~time:0.5)

(* ------------------------------------------------------------------ *)
(* Allocation-free record path                                         *)
(* ------------------------------------------------------------------ *)

let test_record_path_allocation_free () =
  let h = Metrics.Histogram.create () in
  let c = Metrics.Counter.create () in
  let g = Metrics.Gauge.create () in
  (* Warm up (first calls may allocate lazily elsewhere). *)
  Metrics.Histogram.record h 5;
  Metrics.Counter.incr c;
  Metrics.Gauge.set g 1;
  let before = Gc.minor_words () in
  for i = 1 to 10_000 do
    Metrics.Histogram.record h i;
    Metrics.Counter.incr c;
    Metrics.Gauge.set g i
  done;
  let allocated = Gc.minor_words () -. before in
  (* Gc.minor_words itself boxes its float result; allow a few words of
     slack but nothing proportional to the 30k records. *)
  if allocated > 16. then
    Alcotest.failf "record path allocated %.0f minor words" allocated

(* ------------------------------------------------------------------ *)
(* Streaming RFC 4737 reordering metrics                               *)
(* ------------------------------------------------------------------ *)

module Reorder = Obs.Reorder

(* Naive offline reference: recompute every metric from the recorded
   arrival list with full lookback over the last [window] arrivals,
   mirroring the documented semantics the stream implements with a
   ring. With [window >= length] the windowed definition coincides
   with the unwindowed RFC 4737 one (nothing can age out), so the
   differential also pins the stream against the exact metric. *)
type offline = {
  o_arrivals : int;
  o_reordered : int;
  o_late_retx : int;
  o_capped : int;
  o_next_exp : int;
  o_extent : Metrics.Histogram.t;
  o_late : Metrics.Histogram.t;
  o_n : Metrics.Histogram.t;
}

let offline_reorder ~window arrivals =
  let arr = Array.of_list arrivals in
  let seqs = Array.map fst arr in
  let o =
    { o_arrivals = Array.length arr;
      o_reordered = 0;
      o_late_retx = 0;
      o_capped = 0;
      o_next_exp = 0;
      o_extent = Metrics.Histogram.create ();
      o_late = Metrics.Histogram.create ();
      o_n = Metrics.Histogram.create () }
  in
  let reordered = ref 0 and late_retx = ref 0 in
  let capped = ref 0 and next_exp = ref 0 in
  Array.iteri
    (fun i (seq, retx) ->
      if seq >= !next_exp then next_exp := seq + 1
      else begin
        Metrics.Histogram.record o.o_late (!next_exp - seq);
        if retx then incr late_retx
        else begin
          incr reordered;
          let farthest = ref 0 and run = ref 0 in
          let consecutive = ref true in
          for k = 1 to min i window do
            if seqs.(i - k) > seq then begin
              farthest := k;
              if !consecutive then run := k
            end
            else consecutive := false
          done;
          if i >= window && (!farthest = 0 || !farthest = window) then
            incr capped;
          Metrics.Histogram.record o.o_extent
            (if !farthest = 0 then window else !farthest);
          if !run > 0 then Metrics.Histogram.record o.o_n !run
        end
      end)
    arr;
  { o with
    o_reordered = !reordered;
    o_late_retx = !late_retx;
    o_capped = !capped;
    o_next_exp = !next_exp }

let stream_matches ~window arrivals =
  let ro = Reorder.create ~window () in
  List.iter (fun (seq, retx) -> Reorder.observe ro ~retx ~seq ()) arrivals;
  let o = offline_reorder ~window arrivals in
  Reorder.arrivals ro = o.o_arrivals
  && Reorder.reordered ro = o.o_reordered
  && Reorder.late_retx ro = o.o_late_retx
  && Reorder.extent_capped ro = o.o_capped
  && Reorder.next_exp ro = o.o_next_exp
  && state (Reorder.extent ro) = state o.o_extent
  && state (Reorder.late_offset ro) = state o.o_late
  && state (Reorder.n_reordering ro) = state o.o_n

(* Arrival streams as a displacement model: packet [i] leaves in order
   and arrives keyed by [i + d_i] (stable on ties), the way a
   delay-spread path set reorders a flow — every sequence number
   arrives exactly once. [retx] flags are independent. *)
let displaced_stream_gen =
  let open QCheck.Gen in
  let gen =
    int_range 1 120 >>= fun n ->
    list_repeat n (int_range 0 12) >>= fun ds ->
    list_repeat n (frequency [ (4, return false); (1, return true) ])
    >>= fun retx ->
    let keyed = List.mapi (fun i d -> (i + d, i)) ds in
    let order = List.sort compare keyed in
    return (List.map2 (fun (_, i) r -> (i, r)) order retx)
  in
  let print l =
    String.concat ";"
      (List.map
         (fun (s, r) -> Printf.sprintf "%d%s" s (if r then "r" else ""))
         l)
  in
  QCheck.make ~print gen

(* Arbitrary non-negative sequence lists (repeats, jumps): exercises
   the degenerate corners the displacement model cannot reach. *)
let raw_stream_gen =
  QCheck.(
    list_of_size (Gen.int_range 1 100) (pair (int_range 0 40) bool))

let reorder_props =
  [ QCheck.Test.make ~name:"stream = offline (exact, window > length)"
      ~count:300 displaced_stream_gen (stream_matches ~window:200);
    QCheck.Test.make ~name:"stream = offline (window 8, capping)"
      ~count:300 displaced_stream_gen (stream_matches ~window:8);
    QCheck.Test.make ~name:"stream = offline (arbitrary seqs, window 4)"
      ~count:300 raw_stream_gen (stream_matches ~window:4);
    QCheck.Test.make ~name:"merge = pointwise sums" ~count:200
      QCheck.(pair displaced_stream_gen displaced_stream_gen)
      (fun (a, b) ->
        let build arrivals =
          let ro = Reorder.create () in
          List.iter
            (fun (seq, retx) -> Reorder.observe ro ~retx ~seq ())
            arrivals;
          ro
        in
        let ra = build a and rb = build b in
        let merged = Reorder.create () in
        Reorder.merge_into ~into:merged ra;
        Reorder.merge_into ~into:merged rb;
        Reorder.arrivals merged = Reorder.arrivals ra + Reorder.arrivals rb
        && Reorder.reordered merged
           = Reorder.reordered ra + Reorder.reordered rb
        && Reorder.next_exp merged
           = max (Reorder.next_exp ra) (Reorder.next_exp rb)
        && state (Reorder.extent merged)
           = state
               (Metrics.Histogram.merge (Reorder.extent ra)
                  (Reorder.extent rb))) ]

let test_reorder_in_order_stream () =
  let ro = Reorder.create () in
  for seq = 0 to 99 do
    Reorder.observe ro ~seq ()
  done;
  Alcotest.(check int) "no reordering" 0 (Reorder.reordered ro);
  Alcotest.(check (float 1e-9)) "density 0" 0. (Reorder.density ro);
  Alcotest.(check int) "next_exp" 100 (Reorder.next_exp ro)

let test_reorder_extent_caps_at_window () =
  let window = 4 in
  let ro = Reorder.create ~window () in
  (* 0..9 in order, then seq 2: everything larger aged out of the
     4-deep ring except the edge, so the extent must report the window
     bound and count the cap. *)
  for seq = 0 to 9 do
    Reorder.observe ro ~seq ()
  done;
  Reorder.observe ro ~seq:2 ();
  Alcotest.(check int) "capped" 1 (Reorder.extent_capped ro);
  Alcotest.(check int) "extent = window" window
    (Metrics.Histogram.max_value (Reorder.extent ro))

let test_reorder_duplicates_counted_once () =
  let ro = Reorder.create () in
  Reorder.observe ro ~seq:0 ();
  Reorder.observe ro ~seq:1 ();
  Reorder.observe_duplicate ro;
  Alcotest.(check int) "arrivals unchanged" 2 (Reorder.arrivals ro);
  Alcotest.(check int) "duplicates" 1 (Reorder.duplicates ro);
  Alcotest.(check int) "no reordering from the dup" 0 (Reorder.reordered ro)

(* ------------------------------------------------------------------ *)
(* Sketch-based reorder detector                                       *)
(* ------------------------------------------------------------------ *)

module Sketch = Obs.Reorder_sketch

let sketch_of stream =
  let s = Sketch.create () in
  List.iter (fun (flow, seq) -> Sketch.observe s ~flow ~seq) stream;
  s

let sketch_stream_gen =
  QCheck.(
    list_of_size (Gen.int_range 0 200) (pair (int_range 0 15) (int_range 0 100)))

let sketch_props =
  [ QCheck.Test.make ~name:"merge commutative" ~count:200
      QCheck.(pair sketch_stream_gen sketch_stream_gen)
      (fun (a, b) ->
        Sketch.equal
          (Sketch.merge (sketch_of a) (sketch_of b))
          (Sketch.merge (sketch_of b) (sketch_of a)));
    QCheck.Test.make ~name:"merge associative" ~count:200
      QCheck.(triple sketch_stream_gen sketch_stream_gen sketch_stream_gen)
      (fun (a, b, c) ->
        let s = sketch_of in
        Sketch.equal
          (Sketch.merge (Sketch.merge (s a) (s b)) (s c))
          (Sketch.merge (s a) (Sketch.merge (s b) (s c))));
    QCheck.Test.make
      ~name:"shard merge independent of grouping (domain counts)"
      ~count:200 sketch_stream_gen (fun stream ->
        (* Flows partition onto 4 cell sketches (the sharded engine's
           cell-owns-flow discipline); any --domains count merges the
           same cells, only grouped differently. *)
        let cells = Array.init 4 (fun _ -> Sketch.create ()) in
        List.iter
          (fun (flow, seq) ->
            Sketch.observe cells.(flow mod 4) ~flow ~seq)
          stream;
        let sequential = Sketch.create () in
        Array.iter (fun c -> Sketch.merge_into ~into:sequential c) cells;
        let paired =
          Sketch.merge
            (Sketch.merge cells.(0) cells.(1))
            (Sketch.merge cells.(2) cells.(3))
        in
        Sketch.equal sequential paired
        && Sketch.observed sequential
           = List.length stream) ]

let test_sketch_in_order_clean () =
  let s = Sketch.create () in
  for seq = 0 to 99 do
    Sketch.observe s ~flow:3 ~seq
  done;
  Alcotest.(check int) "observed" 100 (Sketch.observed s);
  Alcotest.(check int) "no detections" 0 (Sketch.detected s);
  Alcotest.(check int) "estimate 0" 0 (Sketch.estimate s ~flow:3)

let test_sketch_detects_late_arrival () =
  let s = Sketch.create () in
  for seq = 0 to 9 do
    Sketch.observe s ~flow:3 ~seq
  done;
  Sketch.observe s ~flow:3 ~seq:4;
  Alcotest.(check int) "one detection" 1 (Sketch.detected s);
  Alcotest.(check bool) "estimate >= 1" true (Sketch.estimate s ~flow:3 >= 1)

let test_sketch_fixed_memory () =
  let s = Sketch.create () in
  let words = Sketch.memory_words s in
  Alcotest.(check int) "2 * depth * width" (2 * Sketch.depth s * Sketch.width s)
    words;
  for flow = 0 to 999 do
    Sketch.observe s ~flow ~seq:flow
  done;
  Alcotest.(check int) "unchanged after 1000 flows" words
    (Sketch.memory_words s)

let test_sketch_dimension_mismatch () =
  let a = Sketch.create () and b = Sketch.create ~width:64 () in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Reorder_sketch.merge_into: dimension mismatch")
    (fun () -> Sketch.merge_into ~into:a b)

(* Telemetry renders reordering rows only when non-trivial, so
   reordering-free scenarios keep byte-identical reports. *)
let test_telemetry_sketch_rows_gated () =
  let r = Registry.create () in
  let s = Sketch.create () in
  for seq = 0 to 9 do
    Sketch.observe s ~flow:0 ~seq
  done;
  Check.Telemetry.reorder_sketch r s;
  Alcotest.(check int) "clean sketch renders nothing" 0 (Registry.length r);
  Sketch.observe s ~flow:0 ~seq:2;
  Check.Telemetry.reorder_sketch r s;
  Alcotest.(check bool) "detection renders rows" true
    (Registry.mem r "reorder_sketch.detected")

(* ------------------------------------------------------------------ *)
(* Golden report                                                       *)
(* ------------------------------------------------------------------ *)

let report_variants =
  [ Experiments.Variants.tcp_pr; Experiments.Variants.tcp_sack ]

let render_report ~jobs =
  Check.Report.render ~seed:1 ~jobs ~scenario:Check.Report.Dumbbell
    ~variants:report_variants ()

let first_diff_line expected actual =
  let e = String.split_on_char '\n' expected in
  let a = String.split_on_char '\n' actual in
  let rec scan n e a =
    match (e, a) with
    | [], [] -> Printf.sprintf "no differing line found (line %d)" n
    | x :: _, [] -> Printf.sprintf "line %d: report ends; stored has %S" n x
    | [], y :: _ -> Printf.sprintf "line %d: stored ends; report has %S" n y
    | x :: e', y :: a' ->
      if String.equal x y then scan (n + 1) e' a'
      else Printf.sprintf "line %d:\n  stored:   %s\n  computed: %s" n x y
  in
  scan 1 e a

let golden_report_path = Filename.concat "golden" "report.txt"

let test_report_matches_golden () =
  if not (Sys.file_exists golden_report_path) then
    Alcotest.failf "%s missing (run `make golden`)" golden_report_path;
  let stored =
    In_channel.with_open_bin golden_report_path In_channel.input_all
  in
  let actual = render_report ~jobs:1 in
  if not (String.equal stored actual) then
    Alcotest.failf
      "report drifted from %s at %s\n\
       (if the change is intended, regenerate with `make golden`)"
      golden_report_path
      (first_diff_line stored actual)

let test_report_jobs_independent () =
  Alcotest.(check string)
    "jobs=2 byte-identical to jobs=1" (render_report ~jobs:1)
    (render_report ~jobs:2)

let test_report_csv_shape () =
  let csv =
    Check.Report.render ~csv:true ~seed:1 ~jobs:1
      ~scenario:Check.Report.Jitter_chain
      ~variants:[ Experiments.Variants.tcp_pr ]
      ()
  in
  match String.split_on_char '\n' csv with
  | header :: first :: _ ->
    Alcotest.(check string) "header" "scenario,variant,metric,value" header;
    Alcotest.(check bool) "rows carry scenario and variant" true
      (String.length first > 20
      && String.sub first 0 20 = "jitter-chain,TCP-PR,")
  | _ -> Alcotest.fail "empty csv"

(* The Registry shard contract: concurrent shards each record into
   their own registry, merge happens after the domains join, and the
   merged snapshot is byte-identical to the sequential build. *)
let test_registry_merge_across_domains () =
  let build shard =
    let r = Obs.Registry.create () in
    let c = Obs.Registry.counter r "events" in
    for _ = 1 to (shard + 1) * 10 do
      Obs.Metrics.Counter.incr c
    done;
    let h = Obs.Registry.histogram r "depth" in
    for v = 0 to shard + 4 do
      Obs.Metrics.Histogram.record h v
    done;
    Obs.Metrics.Gauge.set (Obs.Registry.gauge r "pool") (shard * 3);
    Obs.Registry.set_value r "level" (float_of_int shard);
    r
  in
  let merged jobs =
    Obs.Export.to_json
      (Obs.Registry.merge_all
         (Array.to_list
            (Sim.Domain_pool.map ~jobs build [| 0; 1; 2; 3; 4; 5 |])))
  in
  Alcotest.(check string) "merged registry identical at any domain count"
    (merged 1) (merged 4)

let () =
  Alcotest.run "obs"
    [ ( "metrics",
        [ Alcotest.test_case "counter" `Quick test_counter_basics;
          Alcotest.test_case "gauge peak" `Quick test_gauge_peak;
          Alcotest.test_case "histogram empty" `Quick test_histogram_empty;
          Alcotest.test_case "histogram edges" `Quick test_histogram_edges;
          Alcotest.test_case "record path allocation-free" `Quick
            test_record_path_allocation_free;
          Alcotest.test_case "negative values clamp" `Quick
            test_histogram_negative_clamped ]
        @ List.map (QCheck_alcotest.to_alcotest ~long:false) histogram_props
        @ List.map
            (QCheck_alcotest.to_alcotest ~long:false)
            negative_value_props );
      ( "reorder",
        [ Alcotest.test_case "in-order stream" `Quick
            test_reorder_in_order_stream;
          Alcotest.test_case "extent caps at window" `Quick
            test_reorder_extent_caps_at_window;
          Alcotest.test_case "duplicates counted once" `Quick
            test_reorder_duplicates_counted_once ]
        @ List.map (QCheck_alcotest.to_alcotest ~long:false) reorder_props );
      ( "reorder-sketch",
        [ Alcotest.test_case "in-order clean" `Quick test_sketch_in_order_clean;
          Alcotest.test_case "detects late arrival" `Quick
            test_sketch_detects_late_arrival;
          Alcotest.test_case "fixed memory" `Quick test_sketch_fixed_memory;
          Alcotest.test_case "dimension mismatch" `Quick
            test_sketch_dimension_mismatch;
          Alcotest.test_case "telemetry rows gated" `Quick
            test_telemetry_sketch_rows_gated ]
        @ List.map (QCheck_alcotest.to_alcotest ~long:false) sketch_props );
      ( "registry",
        [ Alcotest.test_case "find or create" `Quick
            test_registry_find_or_create;
          Alcotest.test_case "kind clash" `Quick test_registry_kind_clash;
          Alcotest.test_case "names sorted" `Quick test_registry_names_sorted;
          Alcotest.test_case "merge semantics" `Quick test_registry_merge;
          Alcotest.test_case "merge across domains" `Quick
            test_registry_merge_across_domains ] );
      ( "flight-recorder",
        [ Alcotest.test_case "wraps" `Quick test_recorder_wraps;
          Alcotest.test_case "partial fill" `Quick test_recorder_partial;
          Alcotest.test_case "attach" `Quick test_recorder_attach;
          Alcotest.test_case "zero capacity rejected" `Quick
            test_recorder_rejects_zero_capacity ] );
      ( "export",
        [ Alcotest.test_case "rows" `Quick test_export_rows;
          Alcotest.test_case "csv and json" `Quick test_export_csv_and_json;
          Alcotest.test_case "sampler" `Quick test_sampler ] );
      ( "report",
        [ Alcotest.test_case "matches golden" `Quick test_report_matches_golden;
          Alcotest.test_case "jobs independent" `Quick
            test_report_jobs_independent;
          Alcotest.test_case "csv shape" `Quick test_report_csv_shape ] ) ]
