(* Tests for the three topologies: structure, routes, and the paper's
   Fig. 1 parking-lot parameters. *)

let check_float = Alcotest.(check (float 1e-9))

(* Every consecutive pair along a route must be joined by a link. *)
let route_is_connected network ~from route =
  let rec walk current = function
    | [] -> true
    | next :: rest -> (
      match Net.Network.link_between network ~src:current ~dst:next with
      | Some _ -> walk next rest
      | None -> false)
  in
  walk from (Array.to_list route)

(* ------------------------------------------------------------------ *)
(* Dumbbell                                                            *)
(* ------------------------------------------------------------------ *)

let test_dumbbell_structure () =
  let engine = Sim.Engine.create () in
  let d = Topo.Dumbbell.create engine ~pairs:3 () in
  Alcotest.(check int) "3 sources" 3 (Array.length d.Topo.Dumbbell.sources);
  Alcotest.(check int) "3 sinks" 3 (Array.length d.Topo.Dumbbell.sinks);
  (* 2 routers + 6 hosts. *)
  Alcotest.(check int) "8 nodes" 8
    (Net.Network.node_count d.Topo.Dumbbell.network);
  check_float "bottleneck bandwidth" 15e6
    (Net.Link.bandwidth_bps d.Topo.Dumbbell.bottleneck_forward)

let test_dumbbell_routes_connected () =
  let engine = Sim.Engine.create () in
  let d = Topo.Dumbbell.create engine ~pairs:2 () in
  let network = d.Topo.Dumbbell.network in
  for pair = 0 to 1 do
    Alcotest.(check bool) "forward route valid" true
      (route_is_connected network
         ~from:(Net.Node.id d.Topo.Dumbbell.sources.(pair))
         (Topo.Dumbbell.route_forward d ~pair));
    Alcotest.(check bool) "reverse route valid" true
      (route_is_connected network
         ~from:(Net.Node.id d.Topo.Dumbbell.sinks.(pair))
         (Topo.Dumbbell.route_reverse d ~pair))
  done

let test_dumbbell_end_to_end () =
  let engine = Sim.Engine.create () in
  let d = Topo.Dumbbell.create engine () in
  let network = d.Topo.Dumbbell.network in
  let received = ref 0 in
  Net.Node.attach d.Topo.Dumbbell.sinks.(0) ~flow:0 (fun _ -> incr received);
  let packet =
    Net.Packet.create ~uid:0 ~flow:0
      ~src:(Net.Node.id d.Topo.Dumbbell.sources.(0))
      ~dst:(Net.Node.id d.Topo.Dumbbell.sinks.(0))
      ~size:1000
      ~route:(Topo.Dumbbell.route_forward d ~pair:0)
      ~born:0. (Net.Packet.Raw 0)
  in
  Net.Network.originate network ~from:d.Topo.Dumbbell.sources.(0) packet;
  Sim.Engine.run_to_completion engine;
  Alcotest.(check int) "delivered across bottleneck" 1 !received

(* ------------------------------------------------------------------ *)
(* Parking lot (Fig. 1)                                                *)
(* ------------------------------------------------------------------ *)

let test_parking_lot_bandwidths () =
  let engine = Sim.Engine.create () in
  let lot = Topo.Parking_lot.create engine () in
  let network = lot.Topo.Parking_lot.network in
  let core i = Net.Node.id lot.Topo.Parking_lot.core.(i) in
  let bandwidth ~src ~dst =
    match Net.Network.link_between network ~src ~dst with
    | Some link -> Net.Link.bandwidth_bps link
    | None -> Alcotest.fail "missing link"
  in
  (* Core chain at 15 Mb/s. *)
  check_float "1->2" 15e6 (bandwidth ~src:(core 0) ~dst:(core 1));
  check_float "2->3" 15e6 (bandwidth ~src:(core 1) ~dst:(core 2));
  check_float "3->4" 15e6 (bandwidth ~src:(core 2) ~dst:(core 3));
  (* Cross-source access links: 5 / 1.66 / 2.5 Mb/s into nodes 1..3. *)
  let cross_pairs = lot.Topo.Parking_lot.cross_pairs in
  let sources =
    List.sort_uniq compare
      (List.map
         (fun p -> Net.Node.id p.Topo.Parking_lot.cross_source)
         cross_pairs)
  in
  (match sources with
  | [ cs1; cs2; cs3 ] ->
    check_float "CS1" 5e6 (bandwidth ~src:cs1 ~dst:(core 0));
    check_float "CS2" 1.66e6 (bandwidth ~src:cs2 ~dst:(core 1));
    check_float "CS3" 2.5e6 (bandwidth ~src:cs3 ~dst:(core 2))
  | _ -> Alcotest.fail "expected three cross sources");
  Alcotest.(check int) "six cross pairs" 6 (List.length cross_pairs)

let test_parking_lot_cross_matrix () =
  (* The paper's matrix: CS1->CD1, CS1->CD2, CS1->CD3, CS2->CD2,
     CS2->CD3, CS3->CD3 — i.e. source index <= sink index always, with
     CS1 appearing three times, CS2 twice, CS3 once. *)
  let engine = Sim.Engine.create () in
  let lot = Topo.Parking_lot.create engine () in
  let by_source = Hashtbl.create 4 in
  List.iter
    (fun p ->
      let src = Net.Node.id p.Topo.Parking_lot.cross_source in
      Hashtbl.replace by_source src
        (1 + Option.value ~default:0 (Hashtbl.find_opt by_source src)))
    lot.Topo.Parking_lot.cross_pairs;
  let counts = List.sort compare (Hashtbl.fold (fun _ v acc -> v :: acc) by_source []) in
  Alcotest.(check (list int)) "1 + 2 + 3 connections" [ 1; 2; 3 ] counts

let test_parking_lot_routes_connected () =
  let engine = Sim.Engine.create () in
  let lot = Topo.Parking_lot.create engine () in
  let network = lot.Topo.Parking_lot.network in
  Alcotest.(check bool) "main forward" true
    (route_is_connected network
       ~from:(Net.Node.id lot.Topo.Parking_lot.source)
       (Topo.Parking_lot.route_forward lot));
  Alcotest.(check bool) "main reverse" true
    (route_is_connected network
       ~from:(Net.Node.id lot.Topo.Parking_lot.destination)
       (Topo.Parking_lot.route_reverse lot));
  List.iter
    (fun p ->
      Alcotest.(check bool) "cross forward" true
        (route_is_connected network
           ~from:(Net.Node.id p.Topo.Parking_lot.cross_source)
           p.Topo.Parking_lot.forward_route);
      Alcotest.(check bool) "cross reverse" true
        (route_is_connected network
           ~from:(Net.Node.id p.Topo.Parking_lot.cross_sink)
           p.Topo.Parking_lot.reverse_route))
    lot.Topo.Parking_lot.cross_pairs

let test_parking_lot_bandwidth_scale () =
  let engine = Sim.Engine.create () in
  let lot = Topo.Parking_lot.create engine ~bandwidth_scale:0.5 () in
  let network = lot.Topo.Parking_lot.network in
  let core i = Net.Node.id lot.Topo.Parking_lot.core.(i) in
  match Net.Network.link_between network ~src:(core 0) ~dst:(core 1) with
  | Some link -> check_float "scaled" 7.5e6 (Net.Link.bandwidth_bps link)
  | None -> Alcotest.fail "missing link"

(* ------------------------------------------------------------------ *)
(* Multipath lattice (Fig. 5)                                          *)
(* ------------------------------------------------------------------ *)

let test_lattice_structure () =
  let engine = Sim.Engine.create () in
  let lattice = Topo.Multipath_lattice.create engine () in
  Alcotest.(check int) "three paths" 3
    (Topo.Multipath_lattice.path_count lattice);
  (* 3/4/5 hops need 2+3+4 intermediates plus source and sink. *)
  Alcotest.(check int) "node count" 11
    (Net.Network.node_count lattice.Topo.Multipath_lattice.network);
  Alcotest.(check (array (Alcotest.float 1e-9)))
    "path delays"
    [| 0.030; 0.040; 0.050 |]
    (Topo.Multipath_lattice.path_delays lattice)

let test_lattice_paths_disjoint () =
  let engine = Sim.Engine.create () in
  let lattice = Topo.Multipath_lattice.create engine () in
  let routes = lattice.Topo.Multipath_lattice.forward_routes in
  let intermediates route =
    List.filter
      (fun id -> id <> Net.Node.id lattice.Topo.Multipath_lattice.destination)
      (Array.to_list route)
  in
  let all = Array.to_list routes |> List.concat_map intermediates in
  let distinct = List.sort_uniq compare all in
  Alcotest.(check int) "node-disjoint" (List.length all) (List.length distinct)

let test_lattice_routes_deliver () =
  let engine = Sim.Engine.create () in
  let lattice = Topo.Multipath_lattice.create engine () in
  let network = lattice.Topo.Multipath_lattice.network in
  let received = ref [] in
  Net.Node.attach lattice.Topo.Multipath_lattice.destination ~flow:0 (fun p ->
      received := (p.Net.Packet.uid, Sim.Engine.now engine) :: !received);
  Array.iteri
    (fun index route ->
      let packet =
        Net.Packet.create ~uid:index ~flow:0
          ~src:(Net.Node.id lattice.Topo.Multipath_lattice.source)
          ~dst:(Net.Node.id lattice.Topo.Multipath_lattice.destination)
          ~size:1000 ~route ~born:0. (Net.Packet.Raw 0)
      in
      Net.Network.originate network ~from:lattice.Topo.Multipath_lattice.source
        packet)
    lattice.Topo.Multipath_lattice.forward_routes;
  Sim.Engine.run_to_completion engine;
  Alcotest.(check int) "all paths deliver" 3 (List.length !received);
  (* Longer paths deliver later: arrival order is path order. *)
  let order = List.rev_map fst !received in
  Alcotest.(check (list int)) "shorter first" [ 0; 1; 2 ] order

let test_lattice_reverse_routes () =
  let engine = Sim.Engine.create () in
  let lattice = Topo.Multipath_lattice.create engine () in
  let network = lattice.Topo.Multipath_lattice.network in
  Array.iter
    (fun route ->
      Alcotest.(check bool) "reverse connected" true
        (route_is_connected network
           ~from:(Net.Node.id lattice.Topo.Multipath_lattice.destination)
           route))
    lattice.Topo.Multipath_lattice.reverse_routes

let () =
  Alcotest.run "topo"
    [ ( "dumbbell",
        [ Alcotest.test_case "structure" `Quick test_dumbbell_structure;
          Alcotest.test_case "routes connected" `Quick
            test_dumbbell_routes_connected;
          Alcotest.test_case "end to end" `Quick test_dumbbell_end_to_end ] );
      ( "parking-lot",
        [ Alcotest.test_case "fig.1 bandwidths" `Quick
            test_parking_lot_bandwidths;
          Alcotest.test_case "cross matrix" `Quick test_parking_lot_cross_matrix;
          Alcotest.test_case "routes connected" `Quick
            test_parking_lot_routes_connected;
          Alcotest.test_case "bandwidth scale" `Quick
            test_parking_lot_bandwidth_scale ] );
      ( "multipath-lattice",
        [ Alcotest.test_case "structure" `Quick test_lattice_structure;
          Alcotest.test_case "paths disjoint" `Quick test_lattice_paths_disjoint;
          Alcotest.test_case "routes deliver" `Quick test_lattice_routes_deliver;
          Alcotest.test_case "reverse routes" `Quick test_lattice_reverse_routes ]
      ) ]
