(* Tests for the TCP framework: Intervals, Rto, Receiver, and the
   NewReno sender driven as a pure state machine. *)


(* The handlers now write into an {!Tcp.Action_buffer.t} instead of
   returning a list; shadow them with list-returning adapters so the
   assertions below keep their original shape. The originals stay
   available under [_sender] aliases for first-class-module use. *)
module Sack_sender = Tcp.Sack

module Tcp = struct
  include Tcp

  module Newreno = struct
    include Newreno

    let start t ~now = Action_buffer.collect (Newreno.start t ~now)

    let on_ack t ~now ack = Action_buffer.collect (Newreno.on_ack t ~now ack)

    let on_timer t ~now ~key =
      Action_buffer.collect (Newreno.on_timer t ~now ~key)
  end

  module Sack = struct
    include Sack

    let start t ~now = Action_buffer.collect (Sack.start t ~now)

    let on_ack t ~now ack = Action_buffer.collect (Sack.on_ack t ~now ack)

    let on_timer t ~now ~key =
      Action_buffer.collect (Sack.on_timer t ~now ~key)
  end
end

let check_float = Alcotest.(check (float 1e-9))

let sends actions =
  List.filter_map
    (function Tcp.Action.Send { seq; retx } -> Some (seq, retx) | _ -> None)
    actions

let new_sends actions =
  List.filter_map (fun (seq, retx) -> if retx then None else Some seq)
    (sends actions)

let retransmissions actions =
  List.filter_map (fun (seq, retx) -> if retx then Some seq else None)
    (sends actions)

let timer_keys actions =
  List.filter_map
    (function Tcp.Action.Set_timer { key; _ } -> Some key | _ -> None)
    actions

let ack ?(sacks = []) ?dsack ~next ~for_seq () =
  let block (first, last) = { Tcp.Types.first; last } in
  { Tcp.Types.next;
    sacks = List.map block sacks;
    dsack = Option.map block dsack;
    for_seq;
    for_retx = false;
    serial = 0;
    rwnd = Tcp.Types.rwnd_unbounded }

(* ------------------------------------------------------------------ *)
(* Intervals                                                           *)
(* ------------------------------------------------------------------ *)

let intervals_of points =
  List.fold_left Tcp.Intervals.add Tcp.Intervals.empty points

let test_intervals_merge () =
  let t = intervals_of [ 1; 3; 2 ] in
  Alcotest.(check (list (pair int int))) "coalesced" [ (1, 3) ]
    (Tcp.Intervals.to_list t)

let test_intervals_disjoint () =
  let t = intervals_of [ 1; 5; 3 ] in
  Alcotest.(check (list (pair int int)))
    "three singletons"
    [ (1, 1); (3, 3); (5, 5) ]
    (Tcp.Intervals.to_list t)

let test_intervals_add_range_overlap () =
  let t = Tcp.Intervals.add_range Tcp.Intervals.empty ~first:1 ~last:3 in
  let t = Tcp.Intervals.add_range t ~first:6 ~last:8 in
  let t = Tcp.Intervals.add_range t ~first:2 ~last:7 in
  Alcotest.(check (list (pair int int))) "merged all" [ (1, 8) ]
    (Tcp.Intervals.to_list t)

let test_intervals_remove_below () =
  let t = Tcp.Intervals.add_range Tcp.Intervals.empty ~first:1 ~last:10 in
  let t = Tcp.Intervals.remove_below t 5 in
  Alcotest.(check (list (pair int int))) "truncated" [ (5, 10) ]
    (Tcp.Intervals.to_list t)

let test_intervals_remove_range () =
  let t = Tcp.Intervals.add_range Tcp.Intervals.empty ~first:1 ~last:10 in
  let t = Tcp.Intervals.remove_range t ~first:4 ~last:6 in
  Alcotest.(check (list (pair int int)))
    "split"
    [ (1, 3); (7, 10) ]
    (Tcp.Intervals.to_list t)

let test_intervals_counts () =
  let t = intervals_of [ 1; 2; 3; 7; 9; 10 ] in
  Alcotest.(check int) "cardinal" 6 (Tcp.Intervals.cardinal t);
  Alcotest.(check int) "above 3" 3 (Tcp.Intervals.count_above t 3);
  Alcotest.(check int) "above 0" 6 (Tcp.Intervals.count_above t 0);
  Alcotest.(check int) "above 10" 0 (Tcp.Intervals.count_above t 10);
  Alcotest.(check (option int)) "min" (Some 1) (Tcp.Intervals.min_elt t);
  Alcotest.(check (option int)) "max" (Some 10) (Tcp.Intervals.max_elt t)

let test_intervals_containing () =
  let t = intervals_of [ 1; 2; 3; 7 ] in
  Alcotest.(check (option (pair int int)))
    "inside"
    (Some (1, 3))
    (Tcp.Intervals.containing t 2);
  Alcotest.(check (option (pair int int)))
    "outside" None
    (Tcp.Intervals.containing t 5)

module Int_set = Set.Make (Int)

let intervals_model_prop =
  (* Against a naive set model: membership, cardinality, invariant. *)
  QCheck.Test.make ~name:"intervals agree with set model" ~count:500
    QCheck.(list (int_range 0 60))
    (fun points ->
      let t = intervals_of points in
      let model = Int_set.of_list points in
      Tcp.Intervals.invariant t
      && Tcp.Intervals.cardinal t = Int_set.cardinal model
      && List.for_all
           (fun x -> Tcp.Intervals.mem t x = Int_set.mem x model)
           (List.init 62 Fun.id))

let intervals_remove_prop =
  QCheck.Test.make ~name:"remove_range agrees with set model" ~count:500
    QCheck.(triple (list (int_range 0 40)) (int_range 0 40) (int_range 0 40))
    (fun (points, a, b) ->
      let first = min a b and last = max a b in
      let t = Tcp.Intervals.remove_range (intervals_of points) ~first ~last in
      let model =
        Int_set.filter (fun x -> x < first || x > last) (Int_set.of_list points)
      in
      Tcp.Intervals.invariant t
      && Tcp.Intervals.cardinal t = Int_set.cardinal model
      && List.for_all
           (fun x -> Tcp.Intervals.mem t x = Int_set.mem x model)
           (List.init 42 Fun.id))

let intervals_add_remove_roundtrip_prop =
  (* Subtracting a range just added restores the set outside the range
     exactly. *)
  QCheck.Test.make ~name:"add_range/remove_range round-trips" ~count:500
    QCheck.(triple (list (int_range 0 40)) (int_range 0 40) (int_range 0 40))
    (fun (points, a, b) ->
      let first = min a b and last = max a b in
      let t = intervals_of points in
      let u =
        Tcp.Intervals.remove_range
          (Tcp.Intervals.add_range t ~first ~last)
          ~first ~last
      in
      Tcp.Intervals.invariant u
      && List.for_all
           (fun x ->
             Tcp.Intervals.mem u x
             = (Tcp.Intervals.mem t x && (x < first || x > last)))
           (List.init 42 Fun.id))

let intervals_merge_adjacent_prop =
  (* Two abutting ranges coalesce into the single canonical interval. *)
  QCheck.Test.make ~name:"adjacent ranges coalesce" ~count:500
    QCheck.(triple (int_range 0 30) (int_range 0 10) (int_range 0 10))
    (fun (a, d1, d2) ->
      let b = a + d1 in
      let c = b + 1 + d2 in
      let split =
        Tcp.Intervals.add_range
          (Tcp.Intervals.add_range Tcp.Intervals.empty ~first:a ~last:b)
          ~first:(b + 1) ~last:c
      in
      Tcp.Intervals.invariant split
      && Tcp.Intervals.to_list split = [ (a, c) ])

let intervals_count_above_prop =
  QCheck.Test.make ~name:"count_above agrees with set model" ~count:500
    QCheck.(pair (list (int_range 0 60)) (int_range 0 60))
    (fun (points, x) ->
      let t = intervals_of points in
      let model = Int_set.of_list points in
      Tcp.Intervals.count_above t x
      = Int_set.cardinal (Int_set.filter (fun y -> y > x) model))

(* ------------------------------------------------------------------ *)
(* Rto                                                                 *)
(* ------------------------------------------------------------------ *)

let rto_config = { Tcp.Config.default with Tcp.Config.min_rto = 0.2 }

let test_rto_initial () =
  let rto = Tcp.Rto.create Tcp.Config.default in
  check_float "initial 3 s" 3. (Tcp.Rto.current rto);
  Alcotest.(check (option (float 0.))) "no srtt" None (Tcp.Rto.srtt rto)

let test_rto_first_sample () =
  let rto = Tcp.Rto.create rto_config in
  Tcp.Rto.sample rto 0.1;
  Alcotest.(check (option (float 1e-9))) "srtt = rtt" (Some 0.1)
    (Tcp.Rto.srtt rto);
  Alcotest.(check (option (float 1e-9)))
    "rttvar = rtt/2" (Some 0.05) (Tcp.Rto.rttvar rto);
  (* srtt + 4 * rttvar = 0.3, above the 0.2 floor. *)
  check_float "rto" 0.3 (Tcp.Rto.current rto)

let test_rto_converges () =
  let rto = Tcp.Rto.create rto_config in
  for _ = 1 to 200 do
    Tcp.Rto.sample rto 0.1
  done;
  (match Tcp.Rto.srtt rto with
  | Some srtt -> check_float "srtt converges" 0.1 srtt
  | None -> Alcotest.fail "expected srtt");
  (* With constant samples rttvar decays to zero; the floor holds. *)
  check_float "rto at floor" 0.2 (Tcp.Rto.current rto)

let test_rto_backoff () =
  let rto = Tcp.Rto.create rto_config in
  Tcp.Rto.sample rto 0.1;
  let base = Tcp.Rto.current rto in
  Tcp.Rto.backoff rto;
  check_float "doubled" (2. *. base) (Tcp.Rto.current rto);
  Tcp.Rto.backoff rto;
  check_float "doubled again" (4. *. base) (Tcp.Rto.current rto);
  Tcp.Rto.reset_backoff rto;
  check_float "reset" base (Tcp.Rto.current rto)

let test_rto_max_clamp () =
  let rto = Tcp.Rto.create { rto_config with Tcp.Config.max_rto = 10. } in
  Tcp.Rto.sample rto 1.;
  for _ = 1 to 20 do
    Tcp.Rto.backoff rto
  done;
  check_float "clamped" 10. (Tcp.Rto.current rto)

let test_rto_min_clamp () =
  let rto = Tcp.Rto.create rto_config in
  Tcp.Rto.sample rto 0.001;
  check_float "floored at min_rto" 0.2 (Tcp.Rto.current rto)

let test_rto_backoff_without_sample () =
  (* Back-off applies to the initial RTO too, clamped at max_rto, and
     reset restores the un-backed-off value. *)
  let rto = Tcp.Rto.create { rto_config with Tcp.Config.max_rto = 10. } in
  check_float "initial" 3. (Tcp.Rto.current rto);
  for _ = 1 to 10 do
    Tcp.Rto.backoff rto
  done;
  check_float "clamped at max" 10. (Tcp.Rto.current rto);
  Tcp.Rto.reset_backoff rto;
  check_float "back to initial" 3. (Tcp.Rto.current rto)

let test_rto_backoff_survives_sample () =
  (* A new sample refreshes the base estimate but must not clear the
     back-off multiplier: only reset_backoff (new data acked) does. *)
  let rto = Tcp.Rto.create rto_config in
  Tcp.Rto.sample rto 0.1;
  Tcp.Rto.backoff rto;
  check_float "doubled" 0.6 (Tcp.Rto.current rto);
  Tcp.Rto.sample rto 0.1;
  (* srtt = 0.1, rttvar decays to 0.0375: base 0.25, still doubled. *)
  check_float "sample keeps multiplier" 0.5 (Tcp.Rto.current rto);
  Tcp.Rto.reset_backoff rto;
  check_float "reset restores base" 0.25 (Tcp.Rto.current rto)

let test_rto_backoff_at_floor () =
  (* Regression: with the min_rto floor active (tiny RTT), each timeout
     must still double the armed RTO. The old multiplier-only back-off
     inflated silently under the floor and then overshot in one jump. *)
  let rto = Tcp.Rto.create { rto_config with Tcp.Config.max_rto = 10. } in
  Tcp.Rto.sample rto 0.001;
  check_float "at floor" 0.2 (Tcp.Rto.current rto);
  Tcp.Rto.backoff rto;
  check_float "doubles off the floor" 0.4 (Tcp.Rto.current rto);
  Tcp.Rto.backoff rto;
  check_float "keeps doubling" 0.8 (Tcp.Rto.current rto);
  Tcp.Rto.reset_backoff rto;
  check_float "reset returns to floor" 0.2 (Tcp.Rto.current rto)

let rto_props =
  [ QCheck.Test.make ~name:"backoff doubles current, saturating at max_rto"
      ~count:500
      QCheck.(
        triple (float_bound_exclusive 2.) (int_range 0 12)
          (float_bound_exclusive 2.))
      (fun (first_rtt, backoffs, later_rtt) ->
        let rto = Tcp.Rto.create { rto_config with Tcp.Config.max_rto = 10. } in
        Tcp.Rto.sample rto first_rtt;
        let ok = ref true in
        for _ = 1 to backoffs do
          let before = Tcp.Rto.current rto in
          Tcp.Rto.backoff rto;
          let expected = Float.min (2. *. before) 10. in
          if abs_float (Tcp.Rto.current rto -. expected) > 1e-9 then
            ok := false
        done;
        (* A fresh sample must leave the armed RTO within the clamps. *)
        Tcp.Rto.sample rto later_rtt;
        let v = Tcp.Rto.current rto in
        !ok && v >= 0.2 -. 1e-9 && v <= 10. +. 1e-9) ]

let test_rto_sample_on_fresh_ack () =
  (* Sender-level: a clean first ACK yields an RTT sample. *)
  let config =
    { Tcp.Config.default with Tcp.Config.total_segments = Some 8 }
  in
  let t = Tcp.Sack.create config in
  ignore (Tcp.Sack.start t ~now:0.);
  ignore (Tcp.Sack.on_ack t ~now:0.37 (ack ~next:1 ~for_seq:0 ()));
  check_float "sampled" 0.37 (List.assoc "srtt" (Tcp.Sack.metrics t))

let test_rto_karn_invalidation () =
  (* Sender-level Karn: once a segment has been retransmitted, the ACK
     covering it must not produce an RTT sample. *)
  let config =
    { Tcp.Config.default with
      Tcp.Config.total_segments = Some 8;
      initial_rto = 1. }
  in
  let t = Tcp.Sack.create config in
  ignore (Tcp.Sack.start t ~now:0.);
  (* RTO fires: seq 0 is retransmitted. *)
  ignore (Tcp.Sack.on_timer t ~now:1. ~key:0);
  ignore (Tcp.Sack.on_ack t ~now:1.4 (ack ~next:1 ~for_seq:0 ()));
  check_float "no sample from retransmitted segment" (-1.)
    (List.assoc "srtt" (Tcp.Sack.metrics t))

(* ------------------------------------------------------------------ *)
(* Receiver                                                            *)
(* ------------------------------------------------------------------ *)

let test_receiver_in_order () =
  let r = Tcp.Receiver.create Tcp.Config.default in
  let a0 = Tcp.Receiver.on_data r ~seq:0 () in
  Alcotest.(check int) "advances" 1 a0.Tcp.Types.next;
  Alcotest.(check int) "echo" 0 a0.Tcp.Types.for_seq;
  Alcotest.(check bool) "no sacks" true (a0.Tcp.Types.sacks = []);
  Alcotest.(check bool) "no dsack" true (a0.Tcp.Types.dsack = None);
  let a1 = Tcp.Receiver.on_data r ~seq:1 () in
  Alcotest.(check int) "advances" 2 a1.Tcp.Types.next

let test_receiver_gap_sack () =
  let r = Tcp.Receiver.create Tcp.Config.default in
  ignore (Tcp.Receiver.on_data r ~seq:0 ());
  let a = Tcp.Receiver.on_data r ~seq:2 () in
  Alcotest.(check int) "cumulative frozen" 1 a.Tcp.Types.next;
  (match a.Tcp.Types.sacks with
  | [ { Tcp.Types.first = 2; last = 2 } ] -> ()
  | _ -> Alcotest.fail "expected single sack block [2,2]");
  Alcotest.(check int) "buffered" 1 (Tcp.Receiver.buffered r)

let test_receiver_sack_recency_order () =
  let r = Tcp.Receiver.create Tcp.Config.default in
  ignore (Tcp.Receiver.on_data r ~seq:0 ());
  ignore (Tcp.Receiver.on_data r ~seq:2 ());
  ignore (Tcp.Receiver.on_data r ~seq:5 ());
  let a = Tcp.Receiver.on_data r ~seq:8 () in
  (match a.Tcp.Types.sacks with
  | [ b1; b2; b3 ] ->
    Alcotest.(check int) "most recent first" 8 b1.Tcp.Types.first;
    Alcotest.(check int) "then previous" 5 b2.Tcp.Types.first;
    Alcotest.(check int) "then oldest" 2 b3.Tcp.Types.first
  | _ -> Alcotest.fail "expected three blocks");
  (* A fourth distinct block pushes the oldest out (max 3 reported). *)
  ignore (Tcp.Receiver.on_data r ~seq:11 ());
  let a = Tcp.Receiver.on_data r ~seq:14 () in
  Alcotest.(check int) "still three" 3 (List.length a.Tcp.Types.sacks)

let test_receiver_blocks_merge () =
  let r = Tcp.Receiver.create Tcp.Config.default in
  ignore (Tcp.Receiver.on_data r ~seq:0 ());
  ignore (Tcp.Receiver.on_data r ~seq:2 ());
  ignore (Tcp.Receiver.on_data r ~seq:4 ());
  let a = Tcp.Receiver.on_data r ~seq:3 () in
  (match a.Tcp.Types.sacks with
  | first :: _ ->
    Alcotest.(check (pair int int))
      "merged block" (2, 4)
      (first.Tcp.Types.first, first.Tcp.Types.last)
  | [] -> Alcotest.fail "expected a block");
  Alcotest.(check int) "one merged block only" 1 (List.length a.Tcp.Types.sacks)

let test_receiver_hole_fill_drains () =
  let r = Tcp.Receiver.create Tcp.Config.default in
  ignore (Tcp.Receiver.on_data r ~seq:0 ());
  ignore (Tcp.Receiver.on_data r ~seq:2 ());
  ignore (Tcp.Receiver.on_data r ~seq:3 ());
  let a = Tcp.Receiver.on_data r ~seq:1 () in
  Alcotest.(check int) "jumps over buffered run" 4 a.Tcp.Types.next;
  Alcotest.(check bool) "no stale sacks" true (a.Tcp.Types.sacks = []);
  Alcotest.(check int) "buffer drained" 0 (Tcp.Receiver.buffered r)

let test_receiver_dsack_below_cumulative () =
  let r = Tcp.Receiver.create Tcp.Config.default in
  ignore (Tcp.Receiver.on_data r ~seq:0 ());
  ignore (Tcp.Receiver.on_data r ~seq:1 ());
  let a = Tcp.Receiver.on_data r ~seq:0 () in
  (match a.Tcp.Types.dsack with
  | Some { Tcp.Types.first = 0; last = 0 } -> ()
  | _ -> Alcotest.fail "expected dsack [0,0]");
  Alcotest.(check int) "cumulative unchanged" 2 a.Tcp.Types.next;
  Alcotest.(check int) "duplicate counted" 1 (Tcp.Receiver.duplicates r)

let test_receiver_dsack_in_buffer () =
  let r = Tcp.Receiver.create Tcp.Config.default in
  ignore (Tcp.Receiver.on_data r ~seq:0 ());
  ignore (Tcp.Receiver.on_data r ~seq:3 ());
  let a = Tcp.Receiver.on_data r ~seq:3 () in
  match a.Tcp.Types.dsack with
  | Some { Tcp.Types.first = 3; last = 3 } -> ()
  | _ -> Alcotest.fail "expected dsack [3,3]"

(* ---- Delayed ACKs (RFC 1122): only a lone in-order segment defers. *)

let delack_config = { Tcp.Config.default with Tcp.Config.delayed_ack = true }

let deferred = function
  | Tcp.Receiver.Defer _ -> true
  | Tcp.Receiver.Ack_now _ | Tcp.Receiver.Drop _ -> false

let test_receiver_delack_alternates () =
  let r = Tcp.Receiver.create delack_config in
  Alcotest.(check bool) "first lone segment defers" true
    (deferred (Tcp.Receiver.receive r ~seq:0 ()));
  Alcotest.(check bool) "second segment acks now" false
    (deferred (Tcp.Receiver.receive r ~seq:1 ()));
  Alcotest.(check bool) "then defers again" true
    (deferred (Tcp.Receiver.receive r ~seq:2 ()))

let test_receiver_delack_gap_acks_now () =
  let r = Tcp.Receiver.create delack_config in
  ignore (Tcp.Receiver.receive r ~seq:0 ());
  Alcotest.(check bool) "out-of-order acks now" false
    (deferred (Tcp.Receiver.receive r ~seq:2 ()));
  (* The hole fill drains the buffer — still an immediate ACK. *)
  Alcotest.(check bool) "hole fill acks now" false
    (deferred (Tcp.Receiver.receive r ~seq:1 ()));
  Alcotest.(check int) "drained" 0 (Tcp.Receiver.buffered r)

let test_receiver_delack_duplicate_acks_now () =
  let r = Tcp.Receiver.create delack_config in
  ignore (Tcp.Receiver.receive r ~seq:0 ());
  match Tcp.Receiver.receive r ~seq:0 () with
  | Tcp.Receiver.Defer _ | Tcp.Receiver.Drop _ ->
    Alcotest.fail "duplicate must ack now"
  | Tcp.Receiver.Ack_now ack ->
    (match ack.Tcp.Types.dsack with
    | Some { Tcp.Types.first = 0; last = 0 } -> ()
    | _ -> Alcotest.fail "expected dsack [0,0]")

let test_receiver_delack_off_never_defers () =
  let r = Tcp.Receiver.create Tcp.Config.default in
  Alcotest.(check bool) "disabled: ack now" false
    (deferred (Tcp.Receiver.receive r ~seq:0 ()))

let test_receiver_reorder_depth () =
  let r = Tcp.Receiver.create Tcp.Config.default in
  ignore (Tcp.Receiver.on_data r ~seq:0 ());
  ignore (Tcp.Receiver.on_data r ~seq:3 ());
  ignore (Tcp.Receiver.on_data r ~seq:5 ());
  ignore (Tcp.Receiver.on_data r ~seq:1 ());
  let h = Tcp.Receiver.reorder_depth r in
  (* Only the two out-of-order arrivals record a depth (seq - rcv_next
     at arrival time): 3 - 1 = 2 and 5 - 1 = 4. *)
  Alcotest.(check int) "two samples" 2 (Obs.Metrics.Histogram.count h);
  Alcotest.(check int) "min depth" 2 (Obs.Metrics.Histogram.min_value h);
  Alcotest.(check int) "max depth" 4 (Obs.Metrics.Histogram.max_value h);
  Alcotest.(check int) "sum" 6 (Obs.Metrics.Histogram.sum h)

(* RFC 4737 classification at the sink (regression for the streaming
   analytics): a retransmitted hole filler is late for the offset
   density but NOT a fresh reordering event, a late original is a
   reordered singleton, and a repeated sequence number is evaluated
   once (duplicate). Arrival order: 0, 2, 1, 3, 5, 4(retx), 4(dup). *)
let test_receiver_reorder_classification () =
  let r = Tcp.Receiver.create Tcp.Config.default in
  ignore (Tcp.Receiver.on_data r ~seq:0 ());
  ignore (Tcp.Receiver.on_data r ~seq:2 ());
  ignore (Tcp.Receiver.on_data r ~seq:1 ());
  ignore (Tcp.Receiver.on_data r ~seq:3 ());
  ignore (Tcp.Receiver.on_data r ~seq:5 ());
  ignore (Tcp.Receiver.on_data r ~seq:4 ~retx:true ());
  ignore (Tcp.Receiver.on_data r ~seq:4 ());
  let ro = Tcp.Receiver.reorder r in
  Alcotest.(check int) "arrivals exclude the duplicate" 6
    (Obs.Reorder.arrivals ro);
  Alcotest.(check int) "one reordered singleton (seq 1)" 1
    (Obs.Reorder.reordered ro);
  Alcotest.(check int) "hole-filling retransmit is late_retx, not reordered"
    1 (Obs.Reorder.late_retx ro);
  Alcotest.(check int) "duplicate counted once" 1 (Obs.Reorder.duplicates ro);
  Alcotest.(check int) "next_exp" 6 (Obs.Reorder.next_exp ro);
  (* Both late arrivals feed the offset density: 3 - 1 = 2 and
     6 - 4 = 2. *)
  let late = Obs.Reorder.late_offset ro in
  Alcotest.(check int) "late offsets" 2 (Obs.Metrics.Histogram.count late);
  Alcotest.(check int) "offset sum" 4 (Obs.Metrics.Histogram.sum late);
  (* Only the reordered singleton has an extent (distance 1 back to
     seq 2) and an n-reordering entry (1 immediately preceding larger
     arrival). *)
  let extent = Obs.Reorder.extent ro in
  Alcotest.(check int) "one extent" 1 (Obs.Metrics.Histogram.count extent);
  Alcotest.(check int) "extent value" 1 (Obs.Metrics.Histogram.max_value extent);
  Alcotest.(check int) "one n-reordering" 1
    (Obs.Metrics.Histogram.count (Obs.Reorder.n_reordering ro));
  Alcotest.(check int) "nothing capped" 0 (Obs.Reorder.extent_capped ro);
  Alcotest.(check (float 1e-9)) "density excludes the retransmit"
    (1. /. 6.) (Obs.Reorder.density ro);
  Alcotest.(check (float 1e-9)) "late fraction includes it" (2. /. 6.)
    (Obs.Reorder.late_fraction ro)

(* Connection-level: a deferred ACK with no follow-up segment is flushed
   by the delayed-ACK timer, and the connection counts the timeout. *)
let test_connection_delack_timer_fires () =
  let engine = Sim.Engine.create () in
  let network = Net.Network.create engine in
  let src = Net.Network.add_node network in
  let dst = Net.Network.add_node network in
  ignore
    (Net.Network.add_link network ~src ~dst ~bandwidth_bps:10e6 ~delay_s:0.01
       ~capacity:100 ());
  ignore
    (Net.Network.add_link network ~src:dst ~dst:src ~bandwidth_bps:10e6
       ~delay_s:0.01 ~capacity:100 ());
  let config =
    { delack_config with
      Tcp.Config.total_segments = Some 1;
      initial_cwnd = 1. }
  in
  let connection =
    Tcp.Connection.create network ~flow:0 ~src ~dst
      ~sender:(module Sack_sender : Tcp.Sender.S)
      ~config
      ~route_data:(fun () -> [| Net.Node.id dst |])
      ~route_ack:(fun () -> [| Net.Node.id src |])
      ()
  in
  Tcp.Connection.start connection ~at:0.;
  Sim.Engine.run engine ~until:5.;
  Alcotest.(check bool) "transfer completes" true
    (Tcp.Connection.finished connection);
  Alcotest.(check bool) "delack timeout counted" true
    (Tcp.Connection.delack_timeouts connection >= 1)

(* Feeding any arrival order of a permutation of 0..n-1 ends with
   rcv_next = n and an empty out-of-order buffer. *)
let receiver_permutation_prop =
  QCheck.Test.make ~name:"any arrival order drains completely" ~count:300
    QCheck.(int_range 1 40)
    (fun n ->
      let rng = Sim.Rng.create n in
      let order = Array.init n Fun.id in
      Sim.Rng.shuffle rng order;
      let r = Tcp.Receiver.create Tcp.Config.default in
      Array.iter (fun seq -> ignore (Tcp.Receiver.on_data r ~seq ())) order;
      Tcp.Receiver.rcv_next r = n && Tcp.Receiver.buffered r = 0)

(* ------------------------------------------------------------------ *)
(* NewReno sender                                                      *)
(* ------------------------------------------------------------------ *)

let newreno ?(total = None) ?(cwnd = 1.) () =
  let config =
    { Tcp.Config.default with
      Tcp.Config.total_segments = total;
      initial_cwnd = cwnd }
  in
  Tcp.Newreno.create config

let test_newreno_start () =
  let t = newreno ~cwnd:2. () in
  let actions = Tcp.Newreno.start t ~now:0. in
  Alcotest.(check (list int)) "initial window" [ 0; 1 ] (new_sends actions);
  Alcotest.(check (list int)) "rto armed" [ 0 ] (timer_keys actions)

let test_newreno_slow_start_growth () =
  let t = newreno () in
  ignore (Tcp.Newreno.start t ~now:0.);
  ignore (Tcp.Newreno.on_ack t ~now:0.1 (ack ~next:1 ~for_seq:0 ()));
  check_float "cwnd 2 after 1 ack" 2. (Tcp.Newreno.cwnd t);
  ignore (Tcp.Newreno.on_ack t ~now:0.2 (ack ~next:2 ~for_seq:1 ()));
  check_float "cwnd 3" 3. (Tcp.Newreno.cwnd t);
  Alcotest.(check int) "acked" 2 (Tcp.Newreno.acked t)

let test_newreno_fast_retransmit_at_dupthresh () =
  let t = newreno ~cwnd:8. () in
  ignore (Tcp.Newreno.start t ~now:0.);
  ignore (Tcp.Newreno.on_ack t ~now:0.1 (ack ~next:1 ~for_seq:0 ()));
  (* Three duplicate ACKs for next = 1 (packet 1 lost). *)
  let dup for_seq = ack ~next:1 ~for_seq () in
  let a1 = Tcp.Newreno.on_ack t ~now:0.11 (dup 2) in
  Alcotest.(check (list int)) "no retx on 1st dup" [] (retransmissions a1);
  let a2 = Tcp.Newreno.on_ack t ~now:0.12 (dup 3) in
  Alcotest.(check (list int)) "no retx on 2nd dup" [] (retransmissions a2);
  let a3 = Tcp.Newreno.on_ack t ~now:0.13 (dup 4) in
  Alcotest.(check (list int)) "retransmits hole" [ 1 ] (retransmissions a3)

let test_newreno_limited_transmit () =
  let t = newreno ~cwnd:4. () in
  ignore (Tcp.Newreno.start t ~now:0.);
  (* First two dupacks each allow one new segment beyond cwnd. *)
  let a1 = Tcp.Newreno.on_ack t ~now:0.1 (ack ~next:0 ~for_seq:1 ()) in
  Alcotest.(check (list int)) "one new on 1st dup" [ 4 ] (new_sends a1);
  let a2 = Tcp.Newreno.on_ack t ~now:0.11 (ack ~next:0 ~for_seq:2 ()) in
  Alcotest.(check (list int)) "one new on 2nd dup" [ 5 ] (new_sends a2)

let test_newreno_partial_ack_retransmits () =
  let t = newreno ~cwnd:8. () in
  ignore (Tcp.Newreno.start t ~now:0.);
  (* Lose packets 0 and 3: dupacks for next = 0. *)
  let dup for_seq = ack ~next:0 ~for_seq () in
  ignore (Tcp.Newreno.on_ack t ~now:0.1 (dup 1));
  ignore (Tcp.Newreno.on_ack t ~now:0.11 (dup 2));
  let fr = Tcp.Newreno.on_ack t ~now:0.12 (dup 4) in
  Alcotest.(check (list int)) "fast retransmit 0" [ 0 ] (retransmissions fr);
  (* Retransmission of 0 arrives; cumulative moves to 3 (3 still lost):
     partial ack must retransmit 3 without leaving recovery. *)
  let partial = Tcp.Newreno.on_ack t ~now:0.2 (ack ~next:3 ~for_seq:0 ()) in
  Alcotest.(check (list int)) "retransmits next hole" [ 3 ]
    (retransmissions partial)

let test_newreno_full_ack_deflates () =
  let t = newreno ~cwnd:8. () in
  ignore (Tcp.Newreno.start t ~now:0.);
  let dup for_seq = ack ~next:0 ~for_seq () in
  ignore (Tcp.Newreno.on_ack t ~now:0.1 (dup 1));
  ignore (Tcp.Newreno.on_ack t ~now:0.11 (dup 2));
  ignore (Tcp.Newreno.on_ack t ~now:0.12 (dup 3));
  (* Full ACK covering everything sent (limited transmit pushed
     snd_next to 10): recovery exits, cwnd returns to
     ssthresh = min(flight, cwnd)/2 = 4. *)
  ignore (Tcp.Newreno.on_ack t ~now:0.2 (ack ~next:10 ~for_seq:0 ()));
  check_float "deflated to ssthresh" 4. (Tcp.Newreno.cwnd t)

let test_newreno_rto_collapses () =
  let t = newreno ~cwnd:8. () in
  ignore (Tcp.Newreno.start t ~now:0.);
  let actions = Tcp.Newreno.on_timer t ~now:3. ~key:0 in
  check_float "cwnd 1" 1. (Tcp.Newreno.cwnd t);
  Alcotest.(check (list int)) "retransmits first unacked" [ 0 ]
    (retransmissions actions);
  Alcotest.(check (list int)) "timer re-armed" [ 0 ] (timer_keys actions)

let test_newreno_finishes () =
  let t = newreno ~total:(Some 3) ~cwnd:4. () in
  let start = Tcp.Newreno.start t ~now:0. in
  Alcotest.(check (list int)) "only 3 to send" [ 0; 1; 2 ] (new_sends start);
  Alcotest.(check bool) "not finished" false (Tcp.Newreno.finished t);
  ignore (Tcp.Newreno.on_ack t ~now:0.1 (ack ~next:3 ~for_seq:2 ()));
  Alcotest.(check bool) "finished" true (Tcp.Newreno.finished t)

let test_newreno_stale_ack_ignored () =
  let t = newreno ~cwnd:4. () in
  ignore (Tcp.Newreno.start t ~now:0.);
  ignore (Tcp.Newreno.on_ack t ~now:0.1 (ack ~next:2 ~for_seq:1 ()));
  let actions = Tcp.Newreno.on_ack t ~now:0.2 (ack ~next:1 ~for_seq:0 ()) in
  Alcotest.(check int) "no reaction to stale ack" 0 (List.length actions);
  Alcotest.(check int) "snd_una unchanged" 2 (Tcp.Newreno.acked t)

let () =
  Alcotest.run "tcp"
    [ ( "intervals",
        [ Alcotest.test_case "merge" `Quick test_intervals_merge;
          Alcotest.test_case "disjoint" `Quick test_intervals_disjoint;
          Alcotest.test_case "add_range overlap" `Quick
            test_intervals_add_range_overlap;
          Alcotest.test_case "remove_below" `Quick test_intervals_remove_below;
          Alcotest.test_case "remove_range" `Quick test_intervals_remove_range;
          Alcotest.test_case "counts" `Quick test_intervals_counts;
          Alcotest.test_case "containing" `Quick test_intervals_containing;
          QCheck_alcotest.to_alcotest ~long:false intervals_model_prop;
          QCheck_alcotest.to_alcotest ~long:false intervals_remove_prop;
          QCheck_alcotest.to_alcotest ~long:false
            intervals_add_remove_roundtrip_prop;
          QCheck_alcotest.to_alcotest ~long:false intervals_merge_adjacent_prop;
          QCheck_alcotest.to_alcotest ~long:false intervals_count_above_prop ]
      );
      ( "rto",
        [ Alcotest.test_case "initial" `Quick test_rto_initial;
          Alcotest.test_case "first sample" `Quick test_rto_first_sample;
          Alcotest.test_case "converges" `Quick test_rto_converges;
          Alcotest.test_case "backoff" `Quick test_rto_backoff;
          Alcotest.test_case "max clamp" `Quick test_rto_max_clamp;
          Alcotest.test_case "min clamp" `Quick test_rto_min_clamp;
          Alcotest.test_case "backoff without sample" `Quick
            test_rto_backoff_without_sample;
          Alcotest.test_case "backoff survives sample" `Quick
            test_rto_backoff_survives_sample;
          Alcotest.test_case "backoff at floor" `Quick
            test_rto_backoff_at_floor;
          Alcotest.test_case "fresh ack sampled" `Quick
            test_rto_sample_on_fresh_ack;
          Alcotest.test_case "Karn invalidation" `Quick
            test_rto_karn_invalidation ]
        @ List.map (QCheck_alcotest.to_alcotest ~long:false) rto_props );
      ( "receiver",
        [ Alcotest.test_case "in order" `Quick test_receiver_in_order;
          Alcotest.test_case "gap produces sack" `Quick test_receiver_gap_sack;
          Alcotest.test_case "recency order" `Quick
            test_receiver_sack_recency_order;
          Alcotest.test_case "blocks merge" `Quick test_receiver_blocks_merge;
          Alcotest.test_case "hole fill drains" `Quick
            test_receiver_hole_fill_drains;
          Alcotest.test_case "dsack below cumulative" `Quick
            test_receiver_dsack_below_cumulative;
          Alcotest.test_case "dsack in buffer" `Quick
            test_receiver_dsack_in_buffer;
          Alcotest.test_case "delack alternates" `Quick
            test_receiver_delack_alternates;
          Alcotest.test_case "delack gap acks now" `Quick
            test_receiver_delack_gap_acks_now;
          Alcotest.test_case "delack duplicate acks now" `Quick
            test_receiver_delack_duplicate_acks_now;
          Alcotest.test_case "delack off never defers" `Quick
            test_receiver_delack_off_never_defers;
          Alcotest.test_case "reorder depth histogram" `Quick
            test_receiver_reorder_depth;
          Alcotest.test_case "reorder classification (RFC 4737)" `Quick
            test_receiver_reorder_classification;
          Alcotest.test_case "delack timer fires" `Quick
            test_connection_delack_timer_fires;
          QCheck_alcotest.to_alcotest ~long:false receiver_permutation_prop ] );
      ( "newreno",
        [ Alcotest.test_case "start" `Quick test_newreno_start;
          Alcotest.test_case "slow start growth" `Quick
            test_newreno_slow_start_growth;
          Alcotest.test_case "fast retransmit" `Quick
            test_newreno_fast_retransmit_at_dupthresh;
          Alcotest.test_case "limited transmit" `Quick
            test_newreno_limited_transmit;
          Alcotest.test_case "partial ack" `Quick
            test_newreno_partial_ack_retransmits;
          Alcotest.test_case "full ack deflates" `Quick
            test_newreno_full_ack_deflates;
          Alcotest.test_case "rto collapses" `Quick test_newreno_rto_collapses;
          Alcotest.test_case "bounded transfer" `Quick test_newreno_finishes;
          Alcotest.test_case "stale ack ignored" `Quick
            test_newreno_stale_ack_ignored ] ) ]
